"""The global symbolic range analysis of pointers (``GR``, Section 3.4).

For every pointer-typed SSA value the analysis computes an element of the
``MemLocs`` lattice: which allocation sites the pointer may reference and,
for each site, a symbolic interval of byte offsets.  The abstract transfer
functions follow Figure 9 of the paper; the fixed point is computed by the
shared sparse solver (:mod:`repro.engine.solver`) over the def-use graph of
pointer values: one ascending phase (widening at φ-functions, call results
and formal parameters after their first evaluation) followed by a descending
sequence of length two — the schedule traced in Figure 12.

Interprocedurality is context-insensitive: pointer formal parameters are
treated as φ-functions over the actual arguments of the visible call sites
(Section 3.1).  Parameters of functions that may be called from outside the
module get a *parameter pseudo-location*, and results of external calls get
an *unknown pseudo-location*; the query engine treats those object kinds
conservatively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.cfg import reverse_post_order
from ..engine.solver import SparseProblem, SparseSolver
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    FreeInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, NullPointer, UndefValue, Value
from ..rangeanalysis.symbolic_ra import SymbolicRangeAnalysis
from ..symbolic import SymbolicInterval
from .domain import BOTTOM, TOP, PointerAbstractValue
from .locations import LocationTable

__all__ = ["GlobalAnalysisOptions", "GlobalRangeAnalysis"]

#: External routines whose pointer result is their first argument.
_RETURNS_FIRST_ARGUMENT = frozenset({
    "strcpy", "strncpy", "strcat", "strncat", "memcpy", "memmove", "memset",
})


@dataclass
class GlobalAnalysisOptions:
    """Configuration of the global pointer analysis."""

    #: Bind pointer formal parameters to the actual arguments of internal
    #: call sites (the paper's interprocedural, context-insensitive mode).
    interprocedural: bool = True
    #: Give pointer parameters of internally-called functions *only* the
    #: join of their actuals.  When False, every pointer parameter also keeps
    #: its own pseudo-location (maximally conservative).
    closed_world: bool = True
    #: Maximum number of ascending passes (widening makes few necessary).
    max_ascending_passes: int = 6
    #: Length of the descending (narrowing) sequence.
    descending_passes: int = 2
    #: Record per-phase snapshots of the abstract state (Figure 12 traces).
    track_trace: bool = False


@dataclass
class AnalysisStatistics:
    """Bookkeeping reported by the evaluation harness.

    ``ascending_passes`` preserves the historical meaning under the sparse
    solver: the maximum number of times any single value was re-evaluated
    during the ascending phase (a dense pass re-evaluated every value once).
    ``fixpoint_steps`` is the solver's total transfer-function count — the
    hardware-independent cost the scalability benchmark reports.
    """

    functions: int = 0
    pointer_values: int = 0
    ascending_passes: int = 0
    elapsed_seconds: float = 0.0
    fixpoint_steps: int = 0


class _GlobalRangeProblem(SparseProblem):
    """Adapter presenting the GR analysis to the sparse solver.

    Nodes are every pointer-typed formal parameter and instruction; an edge
    points from a value to each value its transfer function reads, including
    the interprocedural actual→formal and return→call-site bindings.
    """

    name = "global-ranges"

    def __init__(self, analysis: "GlobalRangeAnalysis", nodes: List[Value]):
        self._analysis = analysis
        self._nodes = nodes

    def nodes(self) -> List[Value]:
        return self._nodes

    def dependencies(self, node: Value):
        analysis = self._analysis
        if isinstance(node, Argument):
            if not analysis.options.interprocedural:
                return ()
            function = node.parent
            deps = []
            for site in analysis.callgraph.sites_calling(function):
                actuals = site.instruction.args
                if node.index < len(actuals):
                    deps.append(actuals[node.index])
            return deps
        if isinstance(node, PhiInst):
            return [value for value, _ in node.incoming()]
        if isinstance(node, SigmaInst):
            deps = [node.source]
            if node.upper is not None and node.upper.type.is_pointer():
                deps.append(node.upper)
            if node.lower is not None and node.lower.type.is_pointer():
                deps.append(node.lower)
            return deps
        if isinstance(node, CastInst) and node.kind == "bitcast":
            return (node.value,)
        if isinstance(node, SelectInst):
            return (node.true_value, node.false_value)
        if isinstance(node, PtrAddInst):
            return (node.base,)
        if isinstance(node, CallInst):
            return analysis._call_dependencies(node)
        return ()

    def transfer(self, node: Value) -> PointerAbstractValue:
        analysis = self._analysis
        if isinstance(node, Argument):
            return analysis._argument_state(node.parent, node)
        return analysis._evaluate(node)

    def read(self, node: Value) -> PointerAbstractValue:
        return self._analysis._gr.get(node, BOTTOM)

    def write(self, node: Value, value: PointerAbstractValue) -> None:
        self._analysis._gr[node] = value

    def is_refinement_point(self, node: Value) -> bool:
        return isinstance(node, (Argument, PhiInst, CallInst))

    def widen(self, node: Value, old: PointerAbstractValue,
              new: PointerAbstractValue) -> PointerAbstractValue:
        return old.widen(new) if not old.is_bottom else new

    def narrow(self, node: Value, old: PointerAbstractValue,
               new: PointerAbstractValue) -> PointerAbstractValue:
        return old.narrow(new) if not old.is_bottom else new

    def on_phase(self, phase: str) -> None:
        analysis = self._analysis
        if not analysis.options.track_trace:
            return
        if phase == "sweep":
            analysis._snapshot("starting state")
        elif phase == "ascending":
            analysis._snapshot("after widening")
        elif phase.startswith("descending:"):
            analysis._snapshot(f"descending step {phase.split(':', 1)[1]}")

    def delta_nodes(self, edit) -> List[Value]:
        """Seed set of a re-solve after editing ``edit.function``.

        The edited function's own nodes plus their transitive *dependents*
        over the static dependence graph — every value whose fixed point the
        edit can influence (interprocedural influence flows only through the
        actual→formal and return→call-site edges ``dependencies`` already
        declares).  Dependence cycles are either entirely inside or entirely
        outside this closure, so re-solving it with the cold schedule while
        reading retained values for everything else reproduces the cold
        fixed point.
        """
        analysis = self._analysis
        edited = analysis.module.get_function(edit.function)
        known = set(self._nodes)
        dependents: Dict[Value, List[Value]] = {}
        seeds = set()
        for node in self._nodes:
            owner = node.parent if isinstance(node, Argument) else node.function
            if owner is edited:
                seeds.add(node)
            for dependency in self.dependencies(node):
                if dependency in known:
                    dependents.setdefault(dependency, []).append(node)
        frontier = list(seeds)
        while frontier:
            node = frontier.pop()
            for dependent in dependents.get(node, ()):
                if dependent not in seeds:
                    seeds.add(dependent)
                    frontier.append(dependent)
        return [node for node in self._nodes if node in seeds]


class GlobalRangeAnalysis:
    """Whole-module GR analysis."""

    def __init__(self, module: Module,
                 ranges: Optional[SymbolicRangeAnalysis] = None,
                 locations: Optional[LocationTable] = None,
                 options: Optional[GlobalAnalysisOptions] = None):
        self.module = module
        self.options = options or GlobalAnalysisOptions()
        self.ranges = ranges if ranges is not None else SymbolicRangeAnalysis(module)
        self.locations = locations if locations is not None else LocationTable(module)
        self.callgraph = CallGraph.compute(module)
        self.statistics = AnalysisStatistics()
        self.solver_statistics = None
        self._gr: Dict[Value, PointerAbstractValue] = {}
        #: function -> external-visibility verdict; the check walks callgraph
        #: tables and is re-asked on every evaluation of every argument of
        #: the function, so it is resolved once per function instead.
        self._visible: Dict[Function, bool] = {}
        self._trace: List[Tuple[str, Dict[Value, PointerAbstractValue]]] = []
        self._run()

    # -- public API --------------------------------------------------------------
    @classmethod
    def run(cls, module: Module, **kwargs) -> "GlobalRangeAnalysis":
        return cls(module, **kwargs)

    def value_of(self, value: Value) -> PointerAbstractValue:
        """``GR(value)``: the abstract address set of a pointer value."""
        return self._abstract_of(value)

    def trace(self) -> List[Tuple[str, Dict[Value, PointerAbstractValue]]]:
        """Per-phase snapshots (only populated with ``track_trace=True``)."""
        return list(self._trace)

    def pointer_values(self) -> List[Value]:
        """Every pointer value the analysis assigned an abstract state to."""
        return list(self._gr.keys())

    # -- operand evaluation ---------------------------------------------------------
    def _abstract_of(self, value: Value) -> PointerAbstractValue:
        cached = self._gr.get(value)
        if cached is not None:
            return cached
        if isinstance(value, GlobalVariable):
            location = self.locations.location_for_site(value)
            result = PointerAbstractValue.at_location(location) if location else TOP
            self._gr[value] = result
            return result
        if isinstance(value, (NullPointer, UndefValue)):
            return BOTTOM
        if isinstance(value, Constant):
            return BOTTOM
        if isinstance(value, Function):
            return BOTTOM
        # Instructions / arguments not yet visited in this pass.
        return BOTTOM

    def _scalar_range(self, value: Value) -> SymbolicInterval:
        return self.ranges.range_of(value)

    # -- seeding -------------------------------------------------------------------
    def _is_externally_visible(self, function: Function) -> bool:
        cached = self._visible.get(function)
        if cached is None:
            if function.name == "main":
                cached = True
            elif self.callgraph.is_address_taken(function):
                cached = True
            else:
                cached = not self.callgraph.sites_calling(function)
            self._visible[function] = cached
        return cached

    def _argument_state(self, function: Function, argument: Argument) -> PointerAbstractValue:
        state = BOTTOM
        needs_pseudo = (not self.options.interprocedural
                        or not self.options.closed_world
                        or self._is_externally_visible(function))
        if needs_pseudo:
            location = self.locations.ensure_parameter_location(argument)
            state = state.join(PointerAbstractValue.at_location(location))
        if self.options.interprocedural:
            for site in self.callgraph.sites_calling(function):
                actuals = site.instruction.args
                if argument.index < len(actuals):
                    state = state.join(self._abstract_of(actuals[argument.index]))
        return state

    # -- fixed point -----------------------------------------------------------------
    def _call_dependencies(self, inst: CallInst) -> List[Value]:
        """Pointer values the transfer function of a call instruction reads."""
        callee_name = inst.callee_name()
        if callee_name in _RETURNS_FIRST_ARGUMENT and inst.args:
            return [inst.args[0]]
        if isinstance(inst.callee, Function):
            callee = inst.callee
        else:
            callee = self.module.get_function(callee_name)
        if callee is None or callee.is_declaration() or not self.options.interprocedural:
            return []
        deps: List[Value] = []
        for block in callee.blocks:
            terminator = block.terminator
            if isinstance(terminator, ReturnInst) and terminator.value is not None \
                    and terminator.value.type.is_pointer():
                deps.append(terminator.value)
        return deps

    def _pointer_nodes(self) -> List[Value]:
        """Every pointer formal parameter and instruction, in sweep priority
        order (function order, arguments first, then instructions in RPO)."""
        nodes: List[Value] = []
        for function in self.module.defined_functions():
            for argument in function.args:
                if argument.type.is_pointer():
                    nodes.append(argument)
            for block in reverse_post_order(function):
                for inst in block.instructions:
                    if inst.type.is_pointer():
                        nodes.append(inst)
        return nodes

    def _run(self) -> None:
        start = time.perf_counter()
        self.statistics.functions = len(self.module.defined_functions())
        solver = SparseSolver(
            _GlobalRangeProblem(self, self._pointer_nodes()),
            max_node_evaluations=self.options.max_ascending_passes,
            descending_passes=self.options.descending_passes,
        )
        self.solver_statistics = solver.solve()
        self.statistics.ascending_passes = self.solver_statistics.max_node_evaluations
        self.statistics.fixpoint_steps = self.solver_statistics.steps
        self.statistics.pointer_values = len(self._gr)
        self.statistics.elapsed_seconds = time.perf_counter() - start

    def refresh_function(self, old_function: Function, new_function: Function,
                         edit) -> Dict[str, int]:
        """Re-seed the fixed point after a single-function edit.

        The retained ``_gr`` table keeps every value the edit cannot
        influence; the problem's :meth:`_GlobalRangeProblem.delta_nodes`
        closure is reset to ⊥ and re-solved with the cold
        ascending/descending schedule through
        :meth:`SparseSolver.resolve_from`.  Values flowed out of the edited
        function (including its pseudo-locations and kernel symbols) only
        travel along the dependence edges the closure follows, so retained
        entries — and therefore post-edit answers — match a cold rebuild.
        """
        start = time.perf_counter()
        for value in list(old_function.args) + list(old_function.instructions()):
            self._gr.pop(value, None)
        # The new body may add or remove call sites: visibility verdicts and
        # the callgraph both depend on them and are cheap next to a solve.
        self.callgraph = CallGraph.compute(self.module)
        self._visible.clear()
        problem = _GlobalRangeProblem(self, self._pointer_nodes())
        seeds = problem.delta_nodes(edit)
        for node in seeds:
            self._gr.pop(node, None)
        retained = len(self._gr)
        solver = SparseSolver(
            problem,
            max_node_evaluations=self.options.max_ascending_passes,
            descending_passes=self.options.descending_passes,
        )
        self.solver_statistics.accumulate(solver.resolve_from(problem, seeds))
        self.statistics.functions = len(self.module.defined_functions())
        self.statistics.ascending_passes = self.solver_statistics.max_node_evaluations
        self.statistics.fixpoint_steps = self.solver_statistics.steps
        self.statistics.pointer_values = len(self._gr)
        self.statistics.elapsed_seconds += time.perf_counter() - start
        return {"reseeded": len(seeds), "retained": retained}

    def _snapshot(self, label: str) -> None:
        self._trace.append((label, dict(self._gr)))

    # -- transfer functions --------------------------------------------------------------
    def _evaluate(self, inst: Instruction) -> PointerAbstractValue:
        if isinstance(inst, (MallocInst, AllocaInst)):
            location = self.locations.location_for_site(inst)
            return PointerAbstractValue.at_location(location) if location else TOP
        if isinstance(inst, FreeInst):
            return BOTTOM
        if isinstance(inst, PtrAddInst):
            return self._evaluate_ptradd(inst)
        if isinstance(inst, PhiInst):
            state = BOTTOM
            for value, _ in inst.incoming():
                state = state.join(self._abstract_of(value))
            return state
        if isinstance(inst, SigmaInst):
            return self._evaluate_sigma(inst)
        if isinstance(inst, LoadInst):
            # Figure 9: q = *p gets the top of the lattice — memory contents
            # are deliberately not tracked.
            return TOP
        if isinstance(inst, CastInst):
            if inst.kind == "bitcast":
                return self._abstract_of(inst.value)
            if inst.kind == "inttoptr":
                location = self.locations.ensure_unknown_location(
                    inst, f"{inst.function.name}.inttoptr.{inst.name or 'cast'}")
                return PointerAbstractValue.at_location(location)
            return TOP
        if isinstance(inst, SelectInst):
            return self._abstract_of(inst.true_value).join(self._abstract_of(inst.false_value))
        if isinstance(inst, CallInst):
            return self._evaluate_call(inst)
        return TOP

    def _evaluate_ptradd(self, inst: PtrAddInst) -> PointerAbstractValue:
        base = self._abstract_of(inst.base)
        if base.is_bottom or base.is_top:
            return base
        if inst.index is None:
            delta = SymbolicInterval.point(inst.offset)
        else:
            delta = self._scalar_range(inst.index).scale(inst.scale)
            if inst.offset:
                delta = delta.shift(inst.offset)
        return base.shift(delta)

    def _evaluate_sigma(self, inst: SigmaInst) -> PointerAbstractValue:
        state = self._abstract_of(inst.source)
        if state.is_bottom:
            return state
        # Bounds that are pointers constrain slot-wise (Figure 9); integer
        # bounds on a pointer σ cannot arise from the e-SSA construction.
        if inst.upper is not None and inst.upper.type.is_pointer():
            bound = self._abstract_of(inst.upper)
            if not bound.is_bottom:
                state = state.meet_ranges(bound, use_upper=True, adjust=inst.upper_adjust)
        if inst.lower is not None and inst.lower.type.is_pointer():
            bound = self._abstract_of(inst.lower)
            if not bound.is_bottom:
                state = state.meet_ranges(bound, use_upper=False, adjust=inst.lower_adjust)
        if state.is_bottom:
            # The meet removed every slot (infeasible path approximation);
            # fall back to the unconstrained source, which is always sound.
            return self._abstract_of(inst.source)
        return state

    def _evaluate_call(self, inst: CallInst) -> PointerAbstractValue:
        callee_name = inst.callee_name()
        if callee_name in _RETURNS_FIRST_ARGUMENT and inst.args:
            return self._abstract_of(inst.args[0])
        callee = None
        if isinstance(inst.callee, Function):
            callee = inst.callee
        else:
            callee = self.module.get_function(callee_name)
        if callee is not None and not callee.is_declaration():
            if self.options.interprocedural:
                state = BOTTOM
                for block in callee.blocks:
                    terminator = block.terminator
                    if isinstance(terminator, ReturnInst) and terminator.value is not None \
                            and terminator.value.type.is_pointer():
                        state = state.join(self._abstract_of(terminator.value))
                return state
            return TOP
        # External call returning a pointer: a fresh unknown object.
        location = self.locations.ensure_unknown_location(
            inst, f"{inst.function.name}.{callee_name}.{inst.name or 'ret'}")
        return PointerAbstractValue.at_location(location)
