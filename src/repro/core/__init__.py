"""The paper's contribution: symbolic range analysis of pointers.

* :mod:`repro.core.locations` — abstract memory locations (``Loc``);
* :mod:`repro.core.domain` — the ``MemLocs`` lattice of pointer states;
* :mod:`repro.core.global_analysis` — the GR abstract interpreter (Fig. 9);
* :mod:`repro.core.local_analysis` — the LR single-pass analysis (Fig. 11);
* :mod:`repro.core.queries` — the global and local disambiguation tests;
* :mod:`repro.core.rbaa` — the complete alias analysis behind the common
  :class:`~repro.aliases.base.AliasAnalysis` interface.
"""

from .domain import BOTTOM, TOP, PointerAbstractValue
from .global_analysis import GlobalAnalysisOptions, GlobalRangeAnalysis
from .local_analysis import LocalAbstractValue, LocalRangeAnalysis
from .locations import LocationKind, LocationTable, MemoryLocation
from .queries import (
    DisambiguationReason,
    QueryOutcome,
    extend_for_access,
    global_test,
    local_test,
)
from .rbaa import RBAAAliasAnalysis, RBAAOptions, RBAAStatistics

__all__ = [
    "BOTTOM",
    "TOP",
    "PointerAbstractValue",
    "GlobalAnalysisOptions",
    "GlobalRangeAnalysis",
    "LocalAbstractValue",
    "LocalRangeAnalysis",
    "LocationKind",
    "LocationTable",
    "MemoryLocation",
    "DisambiguationReason",
    "QueryOutcome",
    "extend_for_access",
    "global_test",
    "local_test",
    "RBAAAliasAnalysis",
    "RBAAOptions",
    "RBAAStatistics",
]
