"""The ``MemLocs`` abstract domain (Section 3.4).

The paper represents the abstract state of a pointer as an *n*-tuple over
``SymbRanges ⊎ {⊥}``, one slot per allocation site.  Keeping actual tuples
would waste both memory and time (most slots are ⊥), so this implementation
stores only the *support* — a dictionary from :class:`MemoryLocation` to
:class:`~repro.symbolic.interval.SymbolicInterval` — which is exactly the
sparse representation the complexity argument of Section 3.8 relies on.

A distinguished ``TOP`` element represents "may point anywhere with any
offset": it is what loads of pointers produce (Figure 9) and what unknown
external pointers start from.
"""

from __future__ import annotations

from typing import Dict, ItemsView, Mapping, Optional, Tuple

from ..symbolic import SymbolicInterval, TOP_INTERVAL, sym_add
from .locations import MemoryLocation

__all__ = ["PointerAbstractValue", "BOTTOM", "TOP"]


class PointerAbstractValue:
    """One element of the ``MemLocs`` lattice.

    The value is either ``TOP`` (unknown pointer) or a finite map
    ``{loc → interval}``; the empty map is the lattice bottom
    ``(⊥, …, ⊥)``.  Instances are immutable.
    """

    __slots__ = ("_ranges", "_is_top")

    def __init__(self, ranges: Optional[Mapping[MemoryLocation, SymbolicInterval]] = None,
                 *, is_top: bool = False):
        object.__setattr__(self, "_is_top", bool(is_top))
        if is_top:
            object.__setattr__(self, "_ranges", {})
        else:
            cleaned = {location: interval for location, interval in (ranges or {}).items()
                       if not interval.is_empty}
            object.__setattr__(self, "_ranges", cleaned)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("PointerAbstractValue is immutable")

    # -- constructors ------------------------------------------------------------
    @classmethod
    def bottom(cls) -> "PointerAbstractValue":
        """The least element: the pointer references no location."""
        return BOTTOM

    @classmethod
    def top(cls) -> "PointerAbstractValue":
        """The greatest element: any location, any offset."""
        return TOP

    @classmethod
    def at_location(cls, location: MemoryLocation,
                    interval: Optional[SymbolicInterval] = None) -> "PointerAbstractValue":
        """``{loc + [0, 0]}`` (or the given interval)."""
        return cls({location: interval if interval is not None else SymbolicInterval.point(0)})

    # -- observers ------------------------------------------------------------------
    @property
    def is_top(self) -> bool:
        return self._is_top

    @property
    def is_bottom(self) -> bool:
        return not self._is_top and not self._ranges

    def support(self) -> Tuple[MemoryLocation, ...]:
        """The locations with a non-⊥ slot (Definition 2)."""
        return tuple(self._ranges.keys())

    def items(self) -> ItemsView[MemoryLocation, SymbolicInterval]:
        return self._ranges.items()

    def range_for(self, location: MemoryLocation) -> Optional[SymbolicInterval]:
        """The interval bound to ``location`` or ``None`` when the slot is ⊥."""
        if self._is_top:
            return TOP_INTERVAL
        return self._ranges.get(location)

    def has_symbolic_range(self) -> bool:
        """True when at least one bound of one slot mentions a kernel symbol."""
        return any(interval.is_symbolic() for interval in self._ranges.values())

    def has_only_constant_ranges(self) -> bool:
        """True when every slot has integer-constant bounds (and there is at least one)."""
        if self._is_top or not self._ranges:
            return False
        return all(interval.is_constant() for interval in self._ranges.values())

    # -- lattice operations ----------------------------------------------------------
    def join(self, other: "PointerAbstractValue") -> "PointerAbstractValue":
        """Pointwise ``⊔`` with ``⊥ ⊔ R = R``."""
        if self._is_top or other._is_top:
            return TOP
        if self.is_bottom:
            return other
        if other.is_bottom or self is other:
            return self
        merged: Dict[MemoryLocation, SymbolicInterval] = dict(self._ranges)
        for location, interval in other._ranges.items():
            existing = merged.get(location)
            merged[location] = interval if existing is None else existing.join(interval)
        return PointerAbstractValue(merged)

    def widen(self, other: "PointerAbstractValue") -> "PointerAbstractValue":
        """Pointwise ``∇`` (Definition 4), applied as ``old ∇ new``."""
        if self._is_top or other._is_top:
            return TOP
        if self.is_bottom:
            return other
        if other.is_bottom or self is other:
            return self
        widened: Dict[MemoryLocation, SymbolicInterval] = {}
        for location in set(self._ranges) | set(other._ranges):
            old = self._ranges.get(location)
            new = other._ranges.get(location)
            if old is None:
                assert new is not None
                widened[location] = new
            elif new is None:
                widened[location] = old
            else:
                widened[location] = old.widen(new)
        return PointerAbstractValue(widened)

    def narrow(self, other: "PointerAbstractValue") -> "PointerAbstractValue":
        """Descending-sequence refinement applied as ``old.narrow(recomputed)``."""
        if other._is_top or self is other:
            return self
        if self._is_top:
            return other
        narrowed: Dict[MemoryLocation, SymbolicInterval] = {}
        for location, old in self._ranges.items():
            new = other._ranges.get(location)
            narrowed[location] = old if new is None else old.narrow(new)
        return PointerAbstractValue(narrowed)

    def includes(self, other: "PointerAbstractValue") -> bool:
        """``other ⊑ self`` pointwise."""
        if self._is_top or other.is_bottom:
            return True
        if other._is_top:
            return False
        for location, interval in other._ranges.items():
            ours = self._ranges.get(location)
            if ours is None or not ours.contains_interval(interval):
                return False
        return True

    # -- transfer helpers ---------------------------------------------------------------
    def shift(self, delta: SymbolicInterval) -> "PointerAbstractValue":
        """Add an offset interval to every slot (pointer-plus-scalar of Figure 9)."""
        if self._is_top or self.is_bottom or delta.is_empty:
            return self if not delta.is_empty else BOTTOM
        return PointerAbstractValue(
            {location: interval.add(delta) for location, interval in self._ranges.items()}
        )

    def meet_ranges(self, bound: "PointerAbstractValue", *,
                    use_upper: bool, adjust: int = 0) -> "PointerAbstractValue":
        """The σ rules of Figure 9: intersect each slot with a bound pointer's slot.

        Slots missing on either side become ⊥, exactly as in the paper
        (``qi = ⊥ if p1i = ⊥ or p2i = ⊥``).
        """
        if self._is_top:
            # An unknown pointer constrained by a known bound adopts the bound's
            # support with one-sided intervals.
            base: Dict[MemoryLocation, SymbolicInterval] = {
                location: TOP_INTERVAL for location in bound._ranges
            }
            constrained = PointerAbstractValue(base)
            return constrained.meet_ranges(bound, use_upper=use_upper, adjust=adjust)
        if bound._is_top or self.is_bottom or bound.is_bottom:
            return self if not (self.is_bottom or bound.is_bottom) else BOTTOM
        result: Dict[MemoryLocation, SymbolicInterval] = {}
        for location, interval in self._ranges.items():
            bound_interval = bound._ranges.get(location)
            if bound_interval is None:
                continue
            if use_upper:
                limit = sym_add(bound_interval.upper, adjust)
                met = interval.clamp_upper(limit)
            else:
                limit = sym_add(bound_interval.lower, adjust)
                met = interval.clamp_lower(limit)
            if not met.is_empty:
                result[location] = met
        return PointerAbstractValue(result)

    def substitute(self, mapping: Mapping[str, object]) -> "PointerAbstractValue":
        """Substitute kernel symbols inside every interval (used in reporting)."""
        if self._is_top or self.is_bottom:
            return self
        return PointerAbstractValue(
            {location: interval.substitute(mapping)  # type: ignore[arg-type]
             for location, interval in self._ranges.items()}
        )

    # -- dunder ------------------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, PointerAbstractValue):
            return NotImplemented
        return self._is_top == other._is_top and self._ranges == other._ranges

    def __hash__(self) -> int:
        if self._is_top:
            return hash("PointerAbstractValue.TOP")
        return hash(frozenset(self._ranges.items()))

    def __repr__(self) -> str:
        if self._is_top:
            return "GR⊤"
        if self.is_bottom:
            return "GR⊥"
        inner = ", ".join(f"{location!r} + {interval!r}"
                          for location, interval in sorted(
                              self._ranges.items(), key=lambda item: item[0].index))
        return "{" + inner + "}"


BOTTOM = PointerAbstractValue({})
TOP = PointerAbstractValue(is_top=True)
