"""Query harness: enumerate pointer pairs and tally no-alias answers.

The paper's precision experiment asks, for every benchmark program, which
fraction of pointer-pair queries each analysis answers "no alias"
(Figure 13), and how many of the range-based analysis' answers came from the
global test (Figure 14).  This module provides the shared machinery: pair
enumeration, per-analysis counting and the result records the reporting
layer consumes.
"""

from __future__ import annotations

import functools
import inspect
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..aliases.base import AliasAnalysis
from ..aliases.results import AliasResult, MemoryAccess
from ..engine.manager import AnalysisManager
from ..frontend import module_digest, token_stream_digest, tokenize
from ..ir.function import Function
from ..ir.module import Module

__all__ = ["QueryPair", "ProgramResult", "enumerate_query_pairs", "run_queries",
           "AnalysisFactory", "build_analysis", "solver_breakdown",
           "frontend_fingerprint"]

#: A callable building an analysis for a module (e.g. ``BasicAliasAnalysis``).
#: Factories may additionally accept a keyword-only ``manager`` argument to
#: share cached sub-analyses with the other factories of the same run.
AnalysisFactory = Callable[[Module], AliasAnalysis]


@functools.lru_cache(maxsize=None)
def _accepts_manager(factory: AnalysisFactory) -> bool:
    """Whether ``factory`` takes a ``manager`` kwarg (resolved once per factory)."""
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False
    return "manager" in parameters


def build_analysis(factory: AnalysisFactory, module: Module,
                   manager: Optional[AnalysisManager] = None) -> AliasAnalysis:
    """Build one analysis, passing the shared manager when the factory takes it."""
    if manager is not None:
        try:
            accepts = _accepts_manager(factory)
        except TypeError:  # unhashable callable: fall back to a one-off probe
            accepts = _accepts_manager.__wrapped__(factory)
        if accepts:
            return factory(module, manager=manager)
    return factory(module)


@dataclass(frozen=True)
class QueryPair:
    """One alias query: two pointer accesses from the same function."""

    function: Function
    a: MemoryAccess
    b: MemoryAccess


@dataclass
class ProgramResult:
    """Query statistics for one program."""

    program: str
    queries: int = 0
    #: analysis name -> number of queries answered "no alias".
    no_alias: Dict[str, int] = field(default_factory=dict)
    #: analysis name -> wall-clock seconds spent answering queries.
    query_seconds: Dict[str, float] = field(default_factory=dict)
    #: analysis name -> wall-clock seconds spent building the analysis.
    build_seconds: Dict[str, float] = field(default_factory=dict)
    #: extra per-analysis counters (e.g. rbaa's global-test hits).
    extra: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: engine cache counters of the run's AnalysisManager (hits/misses/
    #: builds/invalidations) — deterministic, hardware-independent.
    engine: Dict[str, int] = field(default_factory=dict)
    #: solver problem name -> {"steps", "transfer_ns"}: per-analysis cost
    #: attribution collected from every cached analysis that ran the sparse
    #: solver.  ``steps`` is deterministic; ``transfer_ns`` is wall-time
    #: derived and stripped by the determinism diff (``_ns`` suffix).
    solver: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: frontend determinism fingerprint (token count, token-stream digest,
    #: printed-IR digest) — see :func:`frontend_fingerprint`.  Deterministic
    #: and gated by the CI determinism/perf-smoke compare.
    frontend: Dict[str, object] = field(default_factory=dict)

    def percentage(self, analysis_name: str) -> float:
        """Percentage of queries the analysis disambiguated."""
        if not self.queries:
            return 0.0
        return 100.0 * self.no_alias.get(analysis_name, 0) / self.queries


def frontend_fingerprint(source: str, module: Module) -> Dict[str, object]:
    """Deterministic frontend fingerprint of a compiled program.

    Re-lexes ``source`` (cheap after the scanner rewrite) and hashes the
    token stream plus the printed IR.  The digests ride along in the bench
    record under non-volatile keys, so the CI determinism and perf-smoke
    compares gate on them: any frontend change that alters the token stream
    or the produced IR shows up as a digest mismatch, not as a silent
    precision drift.
    """
    tokens = tokenize(source)
    return {
        "tokens": len(tokens),
        "token_digest": token_stream_digest(tokens),
        "ir_digest": module_digest(module),
    }


def enumerate_query_pairs(module: Module,
                          max_pairs_per_function: Optional[int] = None,
                          functions: Optional[Sequence[Function]] = None
                          ) -> Iterator[QueryPair]:
    """All unordered pairs of distinct pointer SSA values, per function.

    This mirrors the paper's experiment, which queries pairs of pointer
    variables within the analysed programs.  Pairs are enumerated in a
    deterministic order; ``max_pairs_per_function`` truncates the quadratic
    blow-up for very large synthetic functions.  ``functions`` restricts the
    enumeration (the analysis service's per-function query path) — the
    default is every defined function of the module.
    """
    targets = functions if functions is not None else module.defined_functions()
    for function in targets:
        pointers = function.pointer_values()
        emitted = 0
        for a, b in itertools.combinations(pointers, 2):
            if max_pairs_per_function is not None and emitted >= max_pairs_per_function:
                break
            emitted += 1
            yield QueryPair(function, MemoryAccess.of(a), MemoryAccess.of(b))


def run_queries(program_name: str, module: Module,
                factories: Sequence[Tuple[str, AnalysisFactory]],
                max_pairs_per_function: Optional[int] = None,
                manager: Optional[AnalysisManager] = None) -> ProgramResult:
    """Build each analysis and run the full query set through it.

    All factories share one :class:`AnalysisManager`, so analyses layered on
    the same inputs (``rbaa`` and ``rbaa + basic``) compute the expensive
    range bootstrap and GR/LR fixed points once per module instead of once
    per factory.
    """
    result = ProgramResult(program=program_name)
    if manager is None:
        manager = AnalysisManager(module)
    analyses: List[Tuple[str, AliasAnalysis]] = []
    for name, factory in factories:
        start = time.perf_counter()
        analysis = build_analysis(factory, module, manager)
        result.build_seconds[name] = time.perf_counter() - start
        result.no_alias[name] = 0
        result.query_seconds[name] = 0.0
        analyses.append((name, analysis))

    pairs = list(enumerate_query_pairs(module, max_pairs_per_function))
    result.queries = len(pairs)
    for name, analysis in analyses:
        start = time.perf_counter()
        answers = analysis.query_many([(pair.a, pair.b) for pair in pairs])
        count = sum(1 for answer in answers if answer is AliasResult.NO_ALIAS)
        result.no_alias[name] = count
        result.query_seconds[name] = time.perf_counter() - start
        extra: Dict[str, int] = {}
        statistics = getattr(analysis, "statistics", None)
        if statistics is not None and hasattr(statistics, "answered_by_global"):
            extra["answered_by_global"] = statistics.answered_by_global
            extra["answered_by_local"] = statistics.answered_by_local
        credit = getattr(analysis, "credit", None)
        if isinstance(credit, dict):
            extra.update({f"credit_{key}": value for key, value in credit.items()})
        if extra:
            result.extra[name] = extra
    result.engine = manager.statistics.as_dict()
    result.solver = solver_breakdown(manager)
    return result


def solver_breakdown(manager: AnalysisManager) -> Dict[str, Dict[str, int]]:
    """Per-problem solver cost of every analysis cached by ``manager``.

    Keys are the sparse problems' names (``symbolic-ranges``,
    ``global-ranges``, …); ``steps`` counts transfer applications
    (deterministic) and ``transfer_ns`` attributes monotonic wall time to
    the analysis that spent it (volatile, stripped before determinism
    diffs).
    """
    breakdown: Dict[str, Dict[str, int]] = {}
    for analysis in manager.cached_values():
        statistics = getattr(analysis, "solver_statistics", None)
        if statistics is None or not getattr(statistics, "problem", ""):
            continue
        entry = breakdown.setdefault(statistics.problem,
                                     {"steps": 0, "transfer_ns": 0})
        entry["steps"] += statistics.steps
        entry["transfer_ns"] += statistics.transfer_ns
    return breakdown
