"""The symbolic-range census (Section 5's 20.47% statistic).

The paper argues for symbolic (rather than integer) intervals by counting
how many pointers end up with ranges that classic numeric range analysis
could not express: "we found out that 20.47% of the pointers in our three
benchmark suites have exclusively symbolic ranges."

This experiment reruns the GR analysis over the synthetic suite and
classifies every pointer whose abstract state is non-trivial as *numeric*
(all interval bounds are integer constants) or *symbolic* (at least one
bound mentions a kernel symbol).

Run directly with ``python -m repro.evaluation.census``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..benchgen import build_suite
from ..core import GlobalRangeAnalysis
from ..ir.module import Module
from .reporting import format_table

__all__ = ["CensusResult", "census_for_module", "run_census", "format_census"]


@dataclass
class CensusResult:
    """Counts of pointer classifications for one program (or the total)."""

    program: str
    pointers: int = 0
    numeric_only: int = 0
    symbolic: int = 0
    untracked: int = 0  # bottom or top abstract states

    def symbolic_percentage(self) -> float:
        tracked = self.numeric_only + self.symbolic
        return 100.0 * self.symbolic / tracked if tracked else 0.0

    def merged_with(self, other: "CensusResult") -> "CensusResult":
        return CensusResult(
            program=self.program,
            pointers=self.pointers + other.pointers,
            numeric_only=self.numeric_only + other.numeric_only,
            symbolic=self.symbolic + other.symbolic,
            untracked=self.untracked + other.untracked,
        )


def census_for_module(program: str, module: Module,
                      analysis: Optional[GlobalRangeAnalysis] = None) -> CensusResult:
    """Classify every pointer of ``module`` by the nature of its GR ranges."""
    analysis = analysis or GlobalRangeAnalysis(module)
    result = CensusResult(program=program)
    for function in module.defined_functions():
        for pointer in function.pointer_values():
            result.pointers += 1
            state = analysis.value_of(pointer)
            if state.is_top or state.is_bottom:
                result.untracked += 1
            elif state.has_symbolic_range():
                result.symbolic += 1
            else:
                result.numeric_only += 1
    return result


def run_census(program_names: Optional[Sequence[str]] = None,
               max_programs: Optional[int] = None) -> List[CensusResult]:
    """Run the census over the synthetic evaluation suite."""
    suite = build_suite(program_names, max_programs)
    return [census_for_module(name, program.module) for name, program in suite.items()]


def total_census(results: Sequence[CensusResult]) -> CensusResult:
    total = CensusResult(program="Total")
    for result in results:
        total = total.merged_with(result)
    return total


def format_census(results: Sequence[CensusResult]) -> str:
    rows = []
    for result in list(results) + [total_census(results)]:
        rows.append([result.program, result.pointers, result.numeric_only,
                     result.symbolic, result.untracked,
                     f"{result.symbolic_percentage():.2f}"])
    table = format_table(
        ["Program", "#Pointers", "numeric", "symbolic", "untracked", "%symbolic"],
        rows, title="Symbolic-range census (paper: 20.47% exclusively symbolic)")
    return table


def main() -> None:  # pragma: no cover - manual entry point
    print(format_census(run_census()))


if __name__ == "__main__":  # pragma: no cover
    main()
