"""Reproduction of the scalability experiment (Figure 15).

The paper runs the analysis over the 50 largest programs of the LLVM test
suite (~800k IR instructions, ~242k pointers in total) and shows that
analysis time grows linearly with program size (linear correlation ≈ 0.98
against both instruction and pointer counts).

Here the programs are produced by the synthetic generator at 50 increasing
sizes; for each one the experiment times exactly what the paper times — the
mapping of pointers to ``SymbRanges`` values (the GR + LR fixed points),
excluding query time and excluding the bootstrap integer range analysis —
and reports the same correlation coefficients.  Alongside wall time the
experiment reports the sparse solver's fixpoint step counts (transfer
applications), a hardware-independent cost measure.

Run directly with ``python -m repro.evaluation.scalability``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Sequence

from ..benchgen import GeneratorConfig, generate_module
from ..engine import AnalysisManager, keys
from .reporting import format_table

__all__ = ["ScalabilityPoint", "ScalabilityReport", "scalability_configs",
           "measure_point", "run_scalability_experiment",
           "pearson_correlation", "format_figure15"]


@dataclass(frozen=True)
class ScalabilityPoint:
    """One program of the scalability sweep."""

    name: str
    instructions: int
    pointers: int
    analysis_seconds: float
    #: Transfer-function applications of the GR + LR sparse solves.
    solver_steps: int = 0


@dataclass
class ScalabilityReport:
    """All measured points plus the derived statistics of Figure 15."""

    points: List[ScalabilityPoint] = field(default_factory=list)

    def total_instructions(self) -> int:
        return sum(point.instructions for point in self.points)

    def total_pointers(self) -> int:
        return sum(point.pointers for point in self.points)

    def total_seconds(self) -> float:
        return sum(point.analysis_seconds for point in self.points)

    def correlation_time_vs_instructions(self) -> float:
        return pearson_correlation(
            [point.instructions for point in self.points],
            [point.analysis_seconds for point in self.points])

    def correlation_time_vs_pointers(self) -> float:
        return pearson_correlation(
            [point.pointers for point in self.points],
            [point.analysis_seconds for point in self.points])

    def correlation_steps_vs_instructions(self) -> float:
        """Linear correlation of solver steps against program size — the
        deterministic counterpart of the paper's wall-time R: identical on
        every machine and immune to load jitter, so CI can gate on it."""
        return pearson_correlation(
            [point.instructions for point in self.points],
            [point.solver_steps for point in self.points])

    def instructions_per_second(self) -> float:
        seconds = self.total_seconds()
        return self.total_instructions() / seconds if seconds else float("inf")

    def total_solver_steps(self) -> int:
        return sum(point.solver_steps for point in self.points)

    def steps_per_instruction(self) -> float:
        """Fixpoint steps per IR instruction — the sparseness headline: the
        solver should touch each value a small constant number of times."""
        instructions = self.total_instructions()
        return self.total_solver_steps() / instructions if instructions else 0.0


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The linear correlation coefficient R (no numpy needed at this size)."""
    n = len(xs)
    if n < 2 or n != len(ys):
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance_x = sum((x - mean_x) ** 2 for x in xs)
    variance_y = sum((y - mean_y) ** 2 for y in ys)
    if variance_x == 0 or variance_y == 0:
        return 0.0
    return covariance / math.sqrt(variance_x * variance_y)


def scalability_configs(program_count: int = 50,
                        smallest: int = 2,
                        largest: int = 60,
                        seed: int = 7) -> List[GeneratorConfig]:
    """Generator configs of the Figure-15 sweep, in corpus (size) order.

    Both the serial loop below and the sharded parallel runner
    (:mod:`repro.evaluation.parallel`) enumerate points through this helper,
    so a merged parallel sweep is point-for-point the same corpus.
    """
    configs: List[GeneratorConfig] = []
    for index in range(program_count):
        if program_count > 1:
            instances = smallest + (largest - smallest) * index // (program_count - 1)
        else:
            instances = largest
        # One shared rng_key: every point draws the same idiom stream, so
        # smaller programs are prefixes of larger ones and the sweep varies
        # size only (composition noise would otherwise drown the R of the
        # linear-scaling claim at quick-mode point counts).
        configs.append(GeneratorConfig(name=f"scale_{index:02d}",
                                       instances=max(1, instances),
                                       seed=seed + index,
                                       rng_key=f"scale:{seed}"))
    return configs


def measure_point(config: GeneratorConfig) -> ScalabilityPoint:
    """Generate one program and time its GR + LR fixed points."""
    program = generate_module(config)
    module = program.module
    manager = AnalysisManager(module)
    # The bootstrap range analysis is excluded from the timing, mirroring the
    # paper ("we do not count the time to run the out-of-the-box
    # implementation of range analysis").
    manager.get(keys.RANGES)
    manager.get(keys.LOCATIONS)
    start = time.perf_counter()
    global_analysis = manager.get(keys.GLOBAL_RANGES)
    local_analysis = manager.get(keys.LOCAL_RANGES)
    elapsed = time.perf_counter() - start
    steps = (global_analysis.solver_statistics.steps
             + local_analysis.solver_statistics.steps)
    return ScalabilityPoint(
        name=config.name,
        instructions=module.instruction_count(),
        pointers=module.pointer_count(),
        analysis_seconds=elapsed,
        solver_steps=steps,
    )


def run_scalability_experiment(program_count: int = 50,
                               smallest: int = 2,
                               largest: int = 60,
                               seed: int = 7,
                               jobs: int = 1) -> ScalabilityReport:
    """Generate ``program_count`` programs of increasing size and time the analysis.

    ``jobs > 1`` fans the points out over worker processes via
    :func:`repro.evaluation.parallel.run_parallel_scalability`; the merged
    report carries the same points in the same order, with identical
    instruction/pointer/solver-step counts (only wall times differ).
    """
    if jobs > 1:
        from .parallel import run_parallel_scalability
        return run_parallel_scalability(program_count=program_count,
                                        smallest=smallest, largest=largest,
                                        seed=seed, jobs=jobs)
    report = ScalabilityReport()
    for config in scalability_configs(program_count, smallest, largest, seed):
        report.points.append(measure_point(config))
    return report


def format_figure15(report: ScalabilityReport) -> str:
    rows = [[point.name, point.instructions, point.pointers,
             f"{point.analysis_seconds * 1000:.2f}", point.solver_steps]
            for point in report.points]
    table = format_table(
        ["Program", "#Instructions", "#Pointers", "Runtime (ms)", "Fixpoint steps"],
        rows, title="Figure 15 — analysis runtime vs. program size")
    summary = (
        f"\nTotal: {report.total_instructions()} instructions, "
        f"{report.total_pointers()} pointers, {report.total_seconds():.2f} s, "
        f"{report.total_solver_steps()} fixpoint steps\n"
        f"R(time, instructions) = {report.correlation_time_vs_instructions():.3f} "
        f"(paper: 0.982)\n"
        f"R(time, pointers)     = {report.correlation_time_vs_pointers():.3f} "
        f"(paper: 0.975)\n"
        f"R(steps, instructions) = {report.correlation_steps_vs_instructions():.3f} "
        f"(deterministic)\n"
        f"Throughput: {report.instructions_per_second():,.0f} instructions/second, "
        f"{report.steps_per_instruction():.2f} fixpoint steps/instruction"
    )
    return table + summary


def main() -> None:  # pragma: no cover - manual entry point
    print(format_figure15(run_scalability_experiment()))


if __name__ == "__main__":  # pragma: no cover
    main()
