"""Profiling harness: where the evaluation actually spends its time.

The scalability experiment (Figure 15) reports solver steps and wall time,
but neither says *which layer* the time went to — and a perf-sensitive
reproduction needs a recorded trajectory, not a one-off profiler session.
This module runs the evaluation corpus under :mod:`cProfile` and writes
``BENCH_profile.json``:

* **cProfile hotspots** — the top-N functions by internal and by cumulative
  time, with repo-relative paths;
* **per-analysis wall/step breakdown** — build/query seconds per alias
  analysis (from the harness) and, per sparse-solver problem, the
  ``steps``/``transfer_ns`` attribution recorded by
  :class:`~repro.engine.solver.SolverStatistics`;
* **symbolic-layer cache telemetry** — intern-table size and the
  hit/miss/eviction counters of the order-layer memo caches;
* **compile-phase breakdown** — per-module lex/parse/sema/lower/prepare
  wall time plus token/instruction counts and token-stream/IR digests,
  collected by recompiling the corpus under
  :func:`repro.frontend.stages.collect_phases`.

Everything wall-time-derived lives under ``*_seconds``/``*_ns`` keys (or
the ``run`` section), matching the volatile-field convention of
:func:`repro.evaluation.parallel.strip_volatile`; the record is a CI
artifact, not a gate — except for the *presence* of the compile-phase
breakdown, which ``--check-phases`` asserts in the perf-smoke job.

Command line::

    python -m repro.evaluation.profile --quick --out BENCH_profile.json
    python -m repro.evaluation.profile --check-phases BENCH_profile.json
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..benchgen import generate_source, select_programs
from ..frontend import collect_phases, compile_source
from ..symbolic import compare_memo_stats, intern_table_size
from .parallel import (
    QUICK_MAX_PAIRS,
    QUICK_PRECISION_PROGRAMS,
    QUICK_SCALABILITY_POINTS,
    write_json,
)
from .precision import run_precision_experiment
from .scalability import run_scalability_experiment

__all__ = ["run_profile", "profile_record", "compile_phase_breakdown",
           "check_phases", "main"]

#: Fields every per-module compile-phase entry must carry (``--check-phases``).
_PHASE_WALL_FIELDS = ("lex_seconds", "parse_seconds", "sema_seconds",
                      "lower_seconds", "prepare_seconds")
_PHASE_COUNT_FIELDS = ("tokens", "instructions")
_PHASE_DIGEST_FIELDS = ("token_digest", "ir_digest")


def compile_phase_breakdown(program_names: Sequence[str]) -> Dict[str, Any]:
    """Per-module compile-phase telemetry for the given corpus slice.

    Each program is regenerated and recompiled once under
    :func:`repro.frontend.stages.collect_phases`, yielding lex / parse /
    sema / lower / prepare wall seconds (volatile, reported only) plus
    token/instruction counts and token-stream/IR digests (deterministic).
    """
    per_module: Dict[str, Dict[str, Any]] = {}
    totals: Dict[str, Any] = {field: 0.0 for field in _PHASE_WALL_FIELDS}
    for field in _PHASE_COUNT_FIELDS:
        totals[field] = 0
    for program in select_programs(program_names):
        source = generate_source(program.config())
        with collect_phases() as phases:
            compile_source(source, program.name)
        entry = phases.as_dict()
        for field in _PHASE_WALL_FIELDS:
            entry[field] = round(entry[field], 6)
            totals[field] = round(totals[field] + entry[field], 6)
        for field in _PHASE_COUNT_FIELDS:
            totals[field] += entry[field]
        per_module[program.name] = entry
    totals["frontend_seconds"] = round(
        totals["lex_seconds"] + totals["parse_seconds"] + totals["lower_seconds"], 6)
    return {"per_module": per_module, "totals": totals}


def check_phases(record: Dict[str, Any]) -> List[str]:
    """Validate a profile record's compile-phase breakdown.

    Returns a list of human-readable problems (empty when the record is
    well-formed): the section must exist, cover at least one module, and
    every module entry must carry all wall/count/digest fields with
    non-empty digests.
    """
    problems: List[str] = []
    section = record.get("compile_phases")
    if not isinstance(section, dict):
        return ["missing compile_phases section"]
    per_module = section.get("per_module")
    if not isinstance(per_module, dict) or not per_module:
        problems.append("compile_phases.per_module is missing or empty")
        per_module = {}
    for name, entry in sorted(per_module.items()):
        for field in _PHASE_WALL_FIELDS + _PHASE_COUNT_FIELDS:
            if not isinstance(entry.get(field), (int, float)):
                problems.append(f"{name}: missing phase field {field!r}")
        for field in _PHASE_DIGEST_FIELDS:
            if not entry.get(field):
                problems.append(f"{name}: missing or empty digest {field!r}")
    if "totals" not in section:
        problems.append("compile_phases.totals is missing")
    return problems

#: Repository source roots stripped from profile paths (longest first).
_PATH_MARKERS = (f"{os.sep}src{os.sep}", f"{os.sep}lib{os.sep}")


def _relative_path(path: str) -> str:
    """Trim an absolute profile path down to a stable, repo-relative tail."""
    for marker in _PATH_MARKERS:
        index = path.rfind(marker)
        if index >= 0:
            return path[index + 1:]
    return os.path.basename(path)


def _hotspots(stats: pstats.Stats, top: int) -> Dict[str, List[Dict[str, Any]]]:
    """The top-``top`` rows of a profile, by internal and cumulative time."""
    rows = []
    for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        rows.append({
            "function": f"{_relative_path(filename)}:{line}({name})",
            "calls": ncalls,
            "internal_seconds": round(tottime, 6),
            "cumulative_seconds": round(cumtime, 6),
        })
    by_internal = sorted(rows, key=lambda row: row["internal_seconds"],
                         reverse=True)[:top]
    by_cumulative = sorted(rows, key=lambda row: row["cumulative_seconds"],
                           reverse=True)[:top]
    return {"by_internal_seconds": by_internal,
            "by_cumulative_seconds": by_cumulative}


def profile_record(precision, scalability, stats: pstats.Stats, *,
                   top: int, wall_seconds: float,
                   precision_seconds: float,
                   scalability_seconds: float,
                   compile_phases: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the ``BENCH_profile.json`` payload."""
    analyses: Dict[str, Dict[str, Any]] = {}
    solver: Dict[str, Dict[str, int]] = {}
    for result in precision.results:
        for name in result.no_alias:
            entry = analyses.setdefault(name, {
                "build_seconds": 0.0, "query_seconds": 0.0, "no_alias": 0})
            entry["build_seconds"] += result.build_seconds.get(name, 0.0)
            entry["query_seconds"] += result.query_seconds.get(name, 0.0)
            entry["no_alias"] += result.no_alias.get(name, 0)
        for problem, cost in result.solver.items():
            bucket = solver.setdefault(problem, {"steps": 0, "transfer_ns": 0})
            bucket["steps"] += cost.get("steps", 0)
            bucket["transfer_ns"] += cost.get("transfer_ns", 0)
    for entry in analyses.values():
        entry["build_seconds"] = round(entry["build_seconds"], 6)
        entry["query_seconds"] = round(entry["query_seconds"], 6)
    return {
        "schema": 1,
        "run": {
            "python": sys.version.split()[0],
            "wall_seconds": wall_seconds,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "experiments": {
            "precision_seconds": round(precision_seconds, 6),
            "scalability_seconds": round(scalability_seconds, 6),
            "precision_programs": len(precision.results),
            "scalability_points": len(scalability.points),
            "scalability_solver_steps": scalability.total_solver_steps(),
        },
        "analyses": analyses,
        "solver": solver,
        "symbolic_caches": compare_memo_stats(),
        "intern_table_size": intern_table_size(),
        "compile_phases": compile_phases or {},
        "hotspots": _hotspots(stats, top),
    }


def run_profile(programs: Optional[Sequence[str]] = None,
                max_pairs: Optional[int] = None,
                points: int = QUICK_SCALABILITY_POINTS,
                seed: int = 7,
                top: int = 30,
                out: str = "BENCH_profile.json") -> Dict[str, Any]:
    """Profile one serial evaluation run and write the record to ``out``.

    Runs in-process under a single :class:`cProfile.Profile` (``jobs=1`` by
    construction — worker processes would escape the profiler).
    """
    if programs is None:
        programs = list(QUICK_PRECISION_PROGRAMS)
    if max_pairs is None:
        max_pairs = QUICK_MAX_PAIRS
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    precision_started = time.perf_counter()
    precision = run_precision_experiment(programs,
                                         max_pairs_per_function=max_pairs)
    precision_seconds = time.perf_counter() - precision_started
    scalability_started = time.perf_counter()
    scalability = run_scalability_experiment(program_count=points, seed=seed)
    scalability_seconds = time.perf_counter() - scalability_started
    profiler.disable()
    # Outside the cProfile scope: the phase collector's perf_counter calls
    # would otherwise show up as profiler-inflated hotspots of their own.
    phases = compile_phase_breakdown(programs)
    wall_seconds = time.perf_counter() - started

    stats = pstats.Stats(profiler)
    record = profile_record(
        precision, scalability, stats, top=top, wall_seconds=wall_seconds,
        precision_seconds=precision_seconds,
        scalability_seconds=scalability_seconds,
        compile_phases=phases)
    write_json(out, record)
    return record


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.profile",
        description="cProfile the evaluation and attribute time per analysis.")
    parser.add_argument("--quick", action="store_true",
                        help="use the CI quick corpus (the default corpus "
                             "too — the flag is accepted for symmetry with "
                             "the parallel runner)")
    parser.add_argument("--programs", nargs="*", default=None, metavar="NAME",
                        help="precision programs to profile")
    parser.add_argument("--max-pairs", type=int, default=None)
    parser.add_argument("--points", type=int, default=QUICK_SCALABILITY_POINTS,
                        help="Figure-15 points to include")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--top", type=int, default=30,
                        help="profile rows to keep per ranking")
    parser.add_argument("--out", default="BENCH_profile.json")
    parser.add_argument("--check-phases", metavar="RECORD", default=None,
                        help="validate the compile-phase breakdown of an "
                             "existing profile record and exit (used by the "
                             "perf-smoke CI gate)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.check_phases:
        import json
        with open(args.check_phases, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        problems = check_phases(record)
        if problems:
            for problem in problems:
                print(f"check-phases: {problem}", file=sys.stderr)
            return 1
        totals = record["compile_phases"]["totals"]
        print(f"check-phases OK: {len(record['compile_phases']['per_module'])} "
              f"modules, frontend {totals.get('frontend_seconds', 0.0) * 1e3:.1f}ms "
              "(wall reported, never gated)")
        return 0
    record = run_profile(programs=args.programs, max_pairs=args.max_pairs,
                         points=args.points, seed=args.seed, top=args.top,
                         out=args.out)
    run = record["run"]
    print(f"wrote {args.out} ({run['wall_seconds']:.2f}s profiled wall)")
    for problem, cost in sorted(record["solver"].items()):
        print(f"  {problem}: {cost['steps']} steps, "
              f"{cost['transfer_ns'] / 1e6:.1f}ms in transfers")
    totals = record.get("compile_phases", {}).get("totals", {})
    if totals:
        print("  compile: "
              f"lex {totals['lex_seconds'] * 1e3:.1f}ms, "
              f"parse {totals['parse_seconds'] * 1e3:.1f}ms, "
              f"lower {totals['lower_seconds'] * 1e3:.1f}ms, "
              f"prepare {totals['prepare_seconds'] * 1e3:.1f}ms")
    for row in record["hotspots"]["by_internal_seconds"][:5]:
        print(f"  hot: {row['function']} "
              f"({row['internal_seconds']:.3f}s internal)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
