"""Reproduction of the precision experiment (Figures 13 and 14).

For every program of the synthetic evaluation suite the experiment runs the
three analyses the paper compares — ``scev``, ``basic`` and ``rbaa`` — plus
the chained ``rbaa + basic`` combination, over all intraprocedural pointer
pairs, and reports:

* Figure 13: the percentage of queries each analysis answers "no alias";
* Figure 14: how many of rbaa's no-alias answers came from the global test.

Run directly with ``python -m repro.evaluation.precision``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..aliases import BasicAliasAnalysis, CombinedAliasAnalysis, SCEVAliasAnalysis
from ..benchgen import build_suite
from ..core import RBAAAliasAnalysis
from ..ir.module import Module
from .harness import AnalysisFactory, ProgramResult, frontend_fingerprint, run_queries
from .reporting import format_table

__all__ = ["PrecisionReport", "standard_factories", "run_precision_experiment",
           "figure13_rows", "figure14_rows", "format_figure13", "format_figure14"]

#: Column order of Figure 13.
ANALYSIS_COLUMNS = ("scev", "basic", "rbaa", "r+b")


def _combined_factory(module: Module, manager=None):
    # Module-level (not a per-call closure) so build_analysis' per-factory
    # signature cache actually hits across experiment invocations.
    return CombinedAliasAnalysis(
        module,
        [RBAAAliasAnalysis(module, manager=manager), BasicAliasAnalysis(module)],
        name="r+b")


def standard_factories() -> List[Tuple[str, AnalysisFactory]]:
    """The four analysis configurations of Figure 13.

    The factories accept the harness' shared :class:`AnalysisManager`, so the
    standalone ``rbaa`` and the ``rbaa`` inside the chained combination share
    one range bootstrap and one GR/LR fixed point per module.
    """
    return [
        ("scev", SCEVAliasAnalysis),
        ("basic", BasicAliasAnalysis),
        ("rbaa", RBAAAliasAnalysis),
        ("r+b", _combined_factory),
    ]


@dataclass
class PrecisionReport:
    """All per-program results plus aggregate totals."""

    results: List[ProgramResult] = field(default_factory=list)

    def totals(self) -> ProgramResult:
        total = ProgramResult(program="Total")
        for result in self.results:
            total.queries += result.queries
            for name, count in result.no_alias.items():
                total.no_alias[name] = total.no_alias.get(name, 0) + count
            for name, extra in result.extra.items():
                bucket = total.extra.setdefault(name, {})
                for key, value in extra.items():
                    bucket[key] = bucket.get(key, 0) + value
        return total

    def improvement_over_basic(self) -> float:
        """The headline ratio: rbaa no-alias answers / basic no-alias answers."""
        total = self.totals()
        basic = total.no_alias.get("basic", 0)
        rbaa = total.no_alias.get("rbaa", 0)
        return rbaa / basic if basic else float("inf")

    def global_test_fraction(self) -> float:
        """Fraction of rbaa's no-alias answers produced by the global test."""
        total = self.totals()
        rbaa_no_alias = total.no_alias.get("rbaa", 0)
        global_hits = total.extra.get("rbaa", {}).get("answered_by_global", 0)
        return global_hits / rbaa_no_alias if rbaa_no_alias else 0.0


def run_precision_experiment(program_names: Optional[Sequence[str]] = None,
                             max_programs: Optional[int] = None,
                             max_pairs_per_function: Optional[int] = None,
                             jobs: int = 1) -> PrecisionReport:
    """Build the synthetic suite and run the Figure 13/14 experiment.

    ``jobs > 1`` shards the suite over worker processes via
    :func:`repro.evaluation.parallel.run_parallel_precision`; the merged
    report lists the same programs in the same corpus order with identical
    query and no-alias counts (only wall times differ).
    """
    if jobs > 1:
        from .parallel import run_parallel_precision
        return run_parallel_precision(program_names=program_names,
                                      max_programs=max_programs,
                                      max_pairs_per_function=max_pairs_per_function,
                                      jobs=jobs)
    suite = build_suite(program_names, max_programs)
    factories = standard_factories()
    report = PrecisionReport()
    for name, program in suite.items():
        result = run_queries(name, program.module, factories, max_pairs_per_function)
        result.frontend = frontend_fingerprint(program.source, program.module)
        report.results.append(result)
    return report


def figure13_rows(report: PrecisionReport) -> List[List[object]]:
    """Rows of the Figure 13 table: program, #queries, %scev, %basic, %rbaa, %r+b."""
    rows: List[List[object]] = []
    for result in report.results + [report.totals()]:
        rows.append([
            result.program,
            result.queries,
            f"{result.percentage('scev'):.2f}",
            f"{result.percentage('basic'):.2f}",
            f"{result.percentage('rbaa'):.2f}",
            f"{result.percentage('r+b'):.2f}",
        ])
    return rows


def figure14_rows(report: PrecisionReport) -> List[List[object]]:
    """Rows of the Figure 14 table: program, noalias count, global-test count."""
    rows: List[List[object]] = []
    for result in report.results + [report.totals()]:
        rbaa_extra = result.extra.get("rbaa", {})
        rows.append([
            result.program,
            result.no_alias.get("rbaa", 0),
            rbaa_extra.get("answered_by_global", 0),
        ])
    return rows


def format_figure13(report: PrecisionReport) -> str:
    return format_table(
        ["Program", "#Queries", "%scev", "%basic", "%rbaa", "%(r+b)"],
        figure13_rows(report),
        title="Figure 13 — no-alias percentage per analysis",
    )


def format_figure14(report: PrecisionReport) -> str:
    return format_table(
        ["Program", "noalias", "global"],
        figure14_rows(report),
        title="Figure 14 — queries solved by the global test",
    )


def main() -> None:  # pragma: no cover - manual entry point
    report = run_precision_experiment()
    print(format_figure13(report))
    print()
    print(format_figure14(report))
    print()
    print(f"rbaa / basic improvement: {report.improvement_over_basic():.2f}x "
          f"(paper: 1.35x)")
    print(f"global-test fraction of rbaa answers: "
          f"{100 * report.global_test_fraction():.2f}% (paper: 18.52%)")


if __name__ == "__main__":  # pragma: no cover
    main()
