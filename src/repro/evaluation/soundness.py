"""Differential soundness oracle: analyses versus concrete executions.

The paper's headline claim is *soundness*: RBAA may only answer
"no-alias" when the two accesses truly never touch the same memory.
This module checks that claim — and the baselines' and the bootstrap
range analysis' claims — against ground truth produced by the concrete
interpreter (:mod:`repro.interp`):

* every **no-alias verdict** (RBAA, basic, Andersen, Steensgaard) is
  compared against the provenance-carrying pointer values the program
  actually held, scoped by the verdict's
  :class:`~repro.aliases.results.NoAliasClaim` (invocation value sets,
  same-base instances, or skipped when the claim's context cannot be
  reconstructed);
* every **symbolic-RA interval** is compared against every integer value
  observed for the SSA name, after binding the kernel symbols the bounds
  mention to their concretely observed values.

Violations are reported with a replayable ``(program, seed, query)``
triple.  The oracle shards over worker processes exactly like the
benchmark runner (workers regenerate their programs; IR never crosses
process boundaries).

Command line::

    python -m repro.evaluation.soundness --quick --jobs 2 \
        --out SOUNDNESS_REPORT.json --min-programs 50
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..aliases import (
    AndersenAliasAnalysis,
    BasicAliasAnalysis,
    SteensgaardAliasAnalysis,
)
from ..aliases.results import MemoryAccess, NoAliasClaim
from ..benchgen import (
    GeneratorConfig,
    execution_inputs,
    generate_module,
    stable_seed,
    suite_configs,
)
from ..core import RBAAAliasAnalysis
from ..engine.manager import AnalysisManager
from ..interp import ExecutionTrace, Interpreter, InterpreterLimits, Pointer
from ..interp.trace import FrameTrace
from ..ir.function import Function
from ..ir.values import Value
from ..symbolic import evaluate
from .harness import QueryPair, build_analysis, enumerate_query_pairs
from .parallel import map_shards, merge_indexed, partition, resolve_jobs
from .reporting import to_canonical_json

__all__ = [
    "Violation",
    "ProgramCheck",
    "SoundnessReport",
    "soundness_corpus",
    "soundness_factories",
    "unknown_size_pairs",
    "check_program",
    "run_soundness",
    "main",
]

#: Default cap on enumerated pointer pairs per function (oracle workload).
DEFAULT_MAX_PAIRS = 120

#: Extra generated programs in the quick corpus (on top of the 22 suite
#: programs): 22 + 34 = 56 ≥ the CI gate of 50.
QUICK_EXTRA_PROGRAMS = 34

#: Guard against quadratic blow-up when sweeping value-window pairs.
_MAX_WINDOW_PRODUCT = 250_000

#: Per function, how many enumerated pairs are re-queried at *unknown*
#: access size (regression coverage for the unknown-size soundness fix:
#: an analysis that treats an unknown extent as one byte produces
#: falsifiable claims here).
UNKNOWN_SIZE_PAIRS_PER_FUNCTION = 8


def soundness_factories() -> List[Tuple[str, Any]]:
    """The four analyses whose no-alias verdicts the oracle validates."""
    return [
        ("rbaa", RBAAAliasAnalysis),
        ("basic", BasicAliasAnalysis),
        ("andersen", AndersenAliasAnalysis),
        ("steensgaard", SteensgaardAliasAnalysis),
    ]


def soundness_corpus(extra: int = QUICK_EXTRA_PROGRAMS,
                     seed: int = 11) -> List[GeneratorConfig]:
    """The oracle's corpus: every suite program plus ``extra`` fuzz programs.

    The fuzz programs draw from the full idiom pool (uniform mix) with
    sizes cycling 3..8 idiom instances, seeded via :func:`stable_seed` so
    the corpus is identical in every process and under every
    ``PYTHONHASHSEED`` — a violation's ``(program, seed)`` pair replays
    exactly.
    """
    configs = suite_configs()
    for index in range(max(0, extra)):
        name = f"sound_{index:02d}"
        configs.append(GeneratorConfig(
            name=name,
            instances=3 + (index % 6),
            seed=stable_seed(f"soundness:{seed}:{name}", 1_000_000),
        ))
    return configs


# -- result records -----------------------------------------------------------


@dataclass
class Violation:
    """One falsified claim, with everything needed to replay it."""

    kind: str                 # "no-alias" | "range"
    program: str
    analysis: str
    function: str
    query: str
    detail: str
    replay: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ProgramCheck:
    """Oracle outcome for one corpus program (pure data, picklable)."""

    program: str
    seed: int
    executed: bool = False
    stop_reason: Optional[str] = None
    steps: int = 0
    queries: int = 0
    #: analysis name -> number of no-alias verdicts it produced.
    no_alias_claims: Dict[str, int] = field(default_factory=dict)
    claims_checked: int = 0
    claims_skipped: int = 0
    range_values_checked: int = 0
    range_values_skipped: int = 0
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False


@dataclass
class SoundnessReport:
    """Aggregated oracle results over a corpus."""

    checks: List[ProgramCheck] = field(default_factory=list)

    def programs_executed(self) -> int:
        return sum(1 for check in self.checks if check.executed)

    def violations(self) -> List[Violation]:
        return [violation for check in self.checks for violation in check.violations]

    def as_record(self, run_info: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "schema": 1,
            "programs": [asdict(check) for check in self.checks],
            "totals": {
                "programs": len(self.checks),
                "programs_executed": self.programs_executed(),
                "claims_checked": sum(c.claims_checked for c in self.checks),
                "claims_skipped": sum(c.claims_skipped for c in self.checks),
                "range_values_checked": sum(c.range_values_checked for c in self.checks),
                "range_values_skipped": sum(c.range_values_skipped for c in self.checks),
                "violations": len(self.violations()),
            },
        }
        if run_info is not None:
            record["run"] = dict(run_info)
        return record


# -- ground-truth helpers ------------------------------------------------------


def _regions_overlap(pa: Pointer, pb: Pointer,
                     size_a: Optional[int], size_b: Optional[int]) -> bool:
    """Provenance-exact region intersection of two access footprints.

    An unknown size (``None``) is an unbounded extent: the claim quantifies
    over accesses of *any* size, so two same-object footprints overlap as
    soon as either extent is unknown and reaches the other's offset.
    """
    if pa.is_null() or pb.is_null():
        return False
    if pa.obj is not pb.obj:
        return False
    reaches_a = size_b is None or pa.offset < pb.offset + size_b
    reaches_b = size_a is None or pb.offset < pa.offset + size_a
    return reaches_a and reaches_b


def _alive_at(pointer: Pointer, step: int) -> bool:
    """False once the object was freed before ``step`` (accesses would be UB)."""
    freed_at = pointer.obj.freed_at
    return freed_at is None or step < freed_at


class _SymbolTable:
    """Concrete observations of every kernel symbol across the whole trace."""

    def __init__(self, bindings: Dict[str, Value], trace: ExecutionTrace):
        self.bindings = bindings
        observed: Dict[Value, set] = {value: set()
                                      for value in bindings.values()}
        for frame in trace.frames:
            # frame.events is insertion-ordered; iterating it (rather than
            # a set intersection) keeps the sweep hash-order independent.
            for value in frame.events:
                if value in observed:
                    observed[value].update(
                        concrete for concrete in frame.observed(value)
                        if isinstance(concrete, int))
        self._global_values: Dict[str, List[int]] = {
            name: sorted(observed[value]) for name, value in bindings.items()}

    def globally_stable(self, name: str) -> bool:
        """At most one distinct value observed program-wide."""
        return len(self._global_values.get(name, [])) <= 1

    def frame_env(self, frame: FrameTrace) -> Tuple[Dict[str, int], set]:
        """``symbol → concrete value`` for one frame, plus the unusable set.

        Frame-local observations win (parameters, loads of this
        activation); symbols from other activations fall back to their
        program-wide binding when it is unique.  Symbols observed with
        several values — here or globally — are *unstable*: claims whose
        bounds mention them are not quantified over a single valuation and
        are skipped.
        """
        env: Dict[str, int] = {}
        unusable: set = set()
        for name, value in self.bindings.items():
            local = [concrete for concrete in frame.observed(value)
                     if isinstance(concrete, int)]
            if local:
                if len(set(local)) == 1:
                    env[name] = local[0]
                else:
                    unusable.add(name)
                continue
            observed = self._global_values.get(name, [])
            if len(observed) == 1:
                env[name] = observed[0]
            elif len(observed) > 1:
                unusable.add(name)
            else:
                unusable.add(name)  # never executed: no binding to check against
        return env, unusable


def _value_label(value: Value) -> str:
    return value.short_name()


def _pointer_windows(frame: FrameTrace, value: Value) -> List[Tuple[int, int, Pointer]]:
    return [(start, end, concrete) for start, end, concrete in frame.windows(value)
            if isinstance(concrete, Pointer)]


def _anchor_is_single_instance(frame: FrameTrace, trace: ExecutionTrace,
                               anchor: Value) -> bool:
    """True when ``anchor`` held at most one distinct value in context."""
    if anchor in frame.events:
        return frame.distinct_count(anchor) <= 1
    # Anchors defined in other functions (interprocedural GR locations):
    # require a unique program-wide instance.
    distinct: set = set()
    for other in trace.frames:
        for concrete in other.observed(anchor):
            distinct.add(concrete if not isinstance(concrete, float) else ("f", concrete))
            if len(distinct) > 1:
                return False
    return True


# -- the two check passes ------------------------------------------------------


def _check_alias_claim(frame: FrameTrace, trace: ExecutionTrace,
                       a: MemoryAccess, b: MemoryAccess,
                       claim: NoAliasClaim,
                       symbols: _SymbolTable) -> Tuple[bool, Optional[str]]:
    """Check one no-alias claim against one frame.

    Returns ``(checked, detail)``: ``checked`` is False when the frame had
    to be skipped (unstable symbol / repeated anchor instance); ``detail``
    describes the first observed overlap, if any.
    """
    if claim.scope == "unchecked":
        return False, None
    if frame.truncated:
        # A truncated event log would mis-pair anchor instances and could
        # hide reassignments; never judge claims against partial windows.
        return False, None
    for name in claim.symbols:
        if not symbols.globally_stable(name):
            return False, None
    windows_a = _pointer_windows(frame, a.pointer)
    windows_b = _pointer_windows(frame, b.pointer)
    if not windows_a or not windows_b:
        return True, None
    size_a, size_b = a.size, b.size

    if claim.scope == "invocation":
        # The claim: the *sets* of regions the two pointers reference during
        # this activation are disjoint.  Every observed value pair is
        # compared — no temporal-coexistence filter — except pairs whose
        # object was already freed when the later value was assigned
        # (referencing freed memory is outside any analysis' contract).
        for anchor in claim.anchors:
            if not _anchor_is_single_instance(frame, trace, anchor):
                return False, None
        if len(windows_a) * len(windows_b) > _MAX_WINDOW_PRODUCT:
            return False, None
        for start_a, _end_a, pa in windows_a:
            for start_b, _end_b, pb in windows_b:
                if not _regions_overlap(pa, pb, size_a, size_b):
                    continue
                if not _alive_at(pa, max(start_a, start_b)):
                    continue
                return True, (f"{_value_label(a.pointer)}={pa!r} overlaps "
                              f"{_value_label(b.pointer)}={pb!r} "
                              f"(steps {start_a} and {start_b})")
        return True, None

    # scope == "same-base": only value pairs derived from the same dynamic
    # instance of every anchor are quantified over by the claim.
    if len(windows_a) * len(windows_b) > _MAX_WINDOW_PRODUCT:
        return False, None
    for start_a, _end_a, pa in windows_a:
        for start_b, _end_b, pb in windows_b:
            consistent = all(
                frame.window_index_at(anchor, start_a)
                == frame.window_index_at(anchor, start_b)
                for anchor in claim.anchors)
            if not consistent:
                continue
            if not _regions_overlap(pa, pb, size_a, size_b):
                continue
            if not _alive_at(pa, max(start_a, start_b)):
                continue
            return True, (f"{_value_label(a.pointer)}={pa!r} overlaps "
                          f"{_value_label(b.pointer)}={pb!r} "
                          f"(same base instance)")
    return True, None


def _check_ranges(function: Function, frame: FrameTrace, range_oracle,
                  symbols: _SymbolTable, check: ProgramCheck,
                  replay: Dict[str, Any]) -> None:
    """Compare computed intervals against every observed integer value."""
    if frame.truncated:
        # Partial event logs could hide the later values of a symbol's
        # defining instruction; don't bind symbols against them.
        return
    env, unusable = symbols.frame_env(frame)
    for value in range_oracle.integer_values(function):
        observed = [v for v in frame.observed(value) if isinstance(v, int)]
        if not observed:
            continue
        interval = range_oracle.range_of(value)
        if interval.is_empty or interval.is_top:
            continue
        mentioned = interval.symbols()
        if mentioned & unusable or any(name not in env and name in
                                       symbols.bindings for name in mentioned):
            check.range_values_skipped += 1
            continue
        try:
            lower = evaluate(interval.lower, env)
            upper = evaluate(interval.upper, env)
        except (ArithmeticError, KeyError, TypeError):
            check.range_values_skipped += 1
            continue
        check.range_values_checked += 1
        for concrete in observed:
            if lower <= concrete <= upper:
                continue
            check.violations.append(Violation(
                kind="range",
                program=check.program,
                analysis="symbolic-ra",
                function=function.name,
                query=_value_label(value),
                detail=(f"observed {concrete}, claimed "
                        f"[{interval.lower!r}, {interval.upper!r}] "
                        f"= [{lower}, {upper}] under {env!r}"),
                replay=dict(replay),
            ))
            break


def unknown_size_pairs(pairs: Sequence[QueryPair],
                       per_function: int = UNKNOWN_SIZE_PAIRS_PER_FUNCTION
                       ) -> List[QueryPair]:
    """The first ``per_function`` pairs of each function at unknown size.

    These ride along with the sized queries so the corpus sweep also
    falsifies claims made about accesses of unbounded extent — the class of
    bug where an unknown size silently behaved as one byte.
    """
    emitted: Dict[Function, int] = {}
    extra: List[QueryPair] = []
    for pair in pairs:
        count = emitted.get(pair.function, 0)
        if count >= per_function:
            continue
        emitted[pair.function] = count + 1
        extra.append(QueryPair(pair.function,
                               MemoryAccess.unknown_extent(pair.a.pointer),
                               MemoryAccess.unknown_extent(pair.b.pointer)))
    return extra


# -- per-program driver --------------------------------------------------------


def check_program(program, *, factories: Optional[Sequence[Tuple[str, Any]]] = None,
                  range_oracle=None,
                  max_pairs_per_function: Optional[int] = DEFAULT_MAX_PAIRS,
                  limits: Optional[InterpreterLimits] = None) -> ProgramCheck:
    """Run the full differential check for one generated program.

    ``factories`` and ``range_oracle`` are injectable so the test-suite can
    feed deliberately broken analyses through the oracle and assert they
    are caught.
    """
    config = program.config
    module = program.module
    check = ProgramCheck(program=config.name, seed=config.seed)
    inputs = execution_inputs(config)
    replay = {
        "program": config.name,
        "seed": config.seed,
        "instances": config.instances,
        "rng_key": config.rng_key,
        "mix": dict(sorted(config.mix.items())) if config.mix else None,
        "argv": inputs.argv(),
    }

    manager = AnalysisManager(module)
    analyses = [(name, build_analysis(factory, module, manager))
                for name, factory in (factories or soundness_factories())]
    if range_oracle is None:
        for name, analysis in analyses:
            if isinstance(analysis, RBAAAliasAnalysis):
                range_oracle = analysis.ranges
                break
        else:
            from ..engine import keys
            range_oracle = manager.get(keys.RANGES)

    pairs = list(enumerate_query_pairs(module, max_pairs_per_function))
    pairs.extend(unknown_size_pairs(pairs))
    check.queries = len(pairs)
    claims: List[Tuple[str, Any, NoAliasClaim]] = []
    for name, analysis in analyses:
        accesses = [(pair.a, pair.b) for pair in pairs]
        indices = analysis.no_alias_pairs(accesses)
        check.no_alias_claims[name] = len(indices)
        for index in indices:
            pair = pairs[index]
            claims.append((name, pair, analysis.no_alias_context(pair.a, pair.b)))

    interpreter = Interpreter(module, limits=limits)
    trace = interpreter.run_main(inputs.argv())
    check.executed = trace.completed
    check.stop_reason = trace.stop_reason
    check.steps = trace.steps
    check.truncated = any(frame.truncated for frame in trace.frames)

    symbols = _SymbolTable(range_oracle.kernel_bindings(), trace)

    for name, pair, claim in claims:
        claim_checked = False
        for frame in trace.frames_of(pair.function):
            checked, detail = _check_alias_claim(frame, trace, pair.a, pair.b,
                                                 claim, symbols)
            claim_checked = claim_checked or checked
            if detail is not None:
                check.violations.append(Violation(
                    kind="no-alias",
                    program=config.name,
                    analysis=name,
                    function=pair.function.name,
                    query=(f"{_value_label(pair.a.pointer)} vs "
                           f"{_value_label(pair.b.pointer)}"),
                    detail=detail,
                    replay=dict(replay),
                ))
                break
        if claim_checked:
            check.claims_checked += 1
        else:
            check.claims_skipped += 1

    for function in module.defined_functions():
        for frame in trace.frames_of(function):
            _check_ranges(function, frame, range_oracle, symbols, check, replay)
    return check


# -- sharded corpus driver -----------------------------------------------------


def _soundness_shard_worker(
        shard: Sequence[Tuple[int, GeneratorConfig, Optional[int], int]]
) -> List[Tuple[int, ProgramCheck]]:
    """Check one shard of corpus programs (runs inside a worker process)."""
    results: List[Tuple[int, ProgramCheck]] = []
    for corpus_index, config, max_pairs, max_steps in shard:
        program = generate_module(config)
        limits = InterpreterLimits(max_steps=max_steps)
        results.append((corpus_index, check_program(
            program, max_pairs_per_function=max_pairs, limits=limits)))
    return results


def run_soundness(configs: Optional[Sequence[GeneratorConfig]] = None,
                  jobs: Optional[int] = None,
                  max_pairs_per_function: Optional[int] = DEFAULT_MAX_PAIRS,
                  max_steps: int = InterpreterLimits.max_steps) -> SoundnessReport:
    """Run the oracle over a corpus, sharded like the benchmark runner."""
    configs = list(configs if configs is not None else soundness_corpus())
    jobs = resolve_jobs(jobs)
    items = [(index, config, max_pairs_per_function, max_steps)
             for index, config in enumerate(configs)]
    shards = partition(items, jobs)
    checks = merge_indexed(map_shards(_soundness_shard_worker, shards, jobs))
    return SoundnessReport(checks=checks)


# -- command line --------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.soundness",
        description="Differential soundness oracle: alias verdicts and "
                    "symbolic ranges versus concrete executions.")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_EVAL_JOBS or 1)")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke corpus: 22 suite programs + "
                             f"{QUICK_EXTRA_PROGRAMS} fuzz programs")
    parser.add_argument("--extra", type=int, default=None,
                        help="number of generated fuzz programs beyond the suite")
    parser.add_argument("--seed", type=int, default=11,
                        help="base seed of the fuzz slice of the corpus")
    parser.add_argument("--max-pairs", type=int, default=DEFAULT_MAX_PAIRS,
                        help="cap on enumerated pointer pairs per function")
    parser.add_argument("--max-steps", type=int, default=InterpreterLimits.max_steps,
                        help="interpreter step budget per program")
    parser.add_argument("--min-programs", type=int, default=0,
                        help="fail unless at least this many programs executed")
    parser.add_argument("--out", default="SOUNDNESS_REPORT.json",
                        help="report output path")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    extra = args.extra
    if extra is None:
        # Quick mode is the CI smoke corpus (56 programs); the full run
        # sweeps a larger fuzz slice.
        extra = QUICK_EXTRA_PROGRAMS if args.quick else 3 * QUICK_EXTRA_PROGRAMS
    configs = soundness_corpus(extra=extra, seed=args.seed)
    jobs = resolve_jobs(args.jobs)

    started = time.perf_counter()
    report = run_soundness(configs, jobs=jobs,
                           max_pairs_per_function=args.max_pairs,
                           max_steps=args.max_steps)
    elapsed = time.perf_counter() - started

    record = report.as_record(run_info={
        "jobs": jobs,
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "total_wall_seconds": elapsed,
    })
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(to_canonical_json(record))

    executed = report.programs_executed()
    violations = report.violations()
    print(f"wrote {args.out}: {executed}/{len(report.checks)} programs executed, "
          f"{record['totals']['claims_checked']} claims and "
          f"{record['totals']['range_values_checked']} ranges checked, "
          f"{len(violations)} violation(s) ({elapsed:.2f}s wall, jobs={jobs})")
    for violation in violations[:20]:
        print(f"  [{violation.kind}] {violation.program}/{violation.function} "
              f"{violation.analysis}: {violation.query} — {violation.detail}")
    if violations:
        return 1
    if executed < args.min_programs:
        print(f"only {executed} programs executed "
              f"(< --min-programs {args.min_programs})")
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
