"""Corpus-wide differential evaluation of the client analyses.

For every corpus program this runner computes both client reports — the
out-of-bounds verdict table (:mod:`repro.clients.bounds`) and the
loop-parallelization table (:mod:`repro.clients.parallelize`) — executes
the program under the concrete interpreter, and replays the observed
accesses against the verdicts through :mod:`repro.clients.validate`:

* an observed out-of-extent access at a load/store classified ``safe``
  is a violation (and an in-extent access at ``definitely-oob``,
  symmetrically);
* an observed cross-iteration overlapping access pair (store involved)
  inside a loop reported parallelizable is a violation.

Every violation carries a replayable ``(program, seed, access)`` triple.
The runner shards over worker processes exactly like the soundness
oracle (workers regenerate their programs; IR never crosses process
boundaries), and the emitted ``BENCH_clients.json`` is canonical JSON —
byte-identical across ``--jobs`` counts and ``PYTHONHASHSEED`` values
once the volatile wall-time fields are stripped.

Command line::

    python -m repro.evaluation.clients --quick --jobs 2 \
        --out BENCH_clients.json --min-programs 50
    python -m repro.evaluation.clients --compare A.json B.json
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..benchgen import (
    GENERATOR_VERSION,
    GeneratorConfig,
    execution_inputs,
    generate_module,
    stable_seed,
    suite_configs,
)
from ..clients.validate import ClientViolation, validate_bounds, validate_loops
from ..engine import keys
from ..engine.manager import AnalysisManager
from ..interp import Interpreter, InterpreterLimits
from .parallel import compare_bench_files, map_shards, merge_indexed, \
    partition, resolve_jobs
from .reporting import to_canonical_json

__all__ = [
    "ClientCheck",
    "ClientsReport",
    "CLIENT_MIX",
    "clients_corpus",
    "check_clients_program",
    "run_clients",
    "main",
]

#: Extra generated programs in the quick corpus (on top of the 22 suite
#: programs): 22 + 34 = 56 ≥ the CI gate of 50.
QUICK_EXTRA_PROGRAMS = 34

#: The fuzz slice's idiom mix, weighted toward the shapes the clients
#: classify non-trivially: provably-safe walks, off-by-one windows,
#: disjoint and overlapping cross-iteration loops.
CLIENT_MIX: Dict[str, float] = {
    "bounded_walk": 3.0,
    "off_by_one_window": 3.0,
    "disjoint_tiles": 3.0,
    "overlapping_shift": 3.0,
    "mixed_width_stride": 3.0,
    "strided": 1.0,
    "matrix": 1.0,
    "split_halves": 1.0,
    "double_buffer": 1.0,
    "allocator": 1.0,
    "local_scratch": 1.0,
}


def clients_corpus(extra: int = QUICK_EXTRA_PROGRAMS,
                   seed: int = 17) -> List[GeneratorConfig]:
    """The runner's corpus: every suite program plus ``extra`` fuzz programs.

    The fuzz slice draws from :data:`CLIENT_MIX` with sizes cycling 3..8
    idiom instances, seeded via :func:`stable_seed` so the corpus is
    identical in every process and under every ``PYTHONHASHSEED``.
    """
    configs = suite_configs()
    for index in range(max(0, extra)):
        name = f"client_{index:02d}"
        configs.append(GeneratorConfig(
            name=name,
            instances=3 + (index % 6),
            seed=stable_seed(f"clients:{seed}:{name}", 1_000_000),
            mix=dict(CLIENT_MIX),
        ))
    return configs


# -- result records -----------------------------------------------------------


@dataclass
class ClientCheck:
    """Differential outcome for one corpus program (pure data, picklable)."""

    program: str
    seed: int
    executed: bool = False
    stop_reason: Optional[str] = None
    steps: int = 0
    #: The bounds report's verdict counts (safe / maybe_oob /
    #: definitely_oob / accesses).
    bounds_summary: Dict[str, int] = field(default_factory=dict)
    bounds_events_checked: int = 0
    oob_events_observed: int = 0
    loops: int = 0
    parallel_loops: int = 0
    loop_frames_checked: int = 0
    loop_frames_skipped: int = 0
    #: Claimed loop headers absent from the recomputed LoopInfo (stale
    #: report vs. module) — counted per claim, not per frame.
    loop_claims_stale: int = 0
    violations: List[ClientViolation] = field(default_factory=list)
    truncated: bool = False


@dataclass
class ClientsReport:
    """Aggregated differential results over a corpus."""

    checks: List[ClientCheck] = field(default_factory=list)

    def programs_executed(self) -> int:
        return sum(1 for check in self.checks if check.executed)

    def violations(self) -> List[ClientViolation]:
        return [violation for check in self.checks
                for violation in check.violations]

    def as_record(self, run_info: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "schema": 1,
            "generator_version": GENERATOR_VERSION,
            "programs": [asdict(check) for check in self.checks],
            "totals": {
                "programs": len(self.checks),
                "programs_executed": self.programs_executed(),
                "accesses_classified": sum(
                    c.bounds_summary.get("accesses", 0) for c in self.checks),
                "safe": sum(c.bounds_summary.get("safe", 0)
                            for c in self.checks),
                "maybe_oob": sum(c.bounds_summary.get("maybe_oob", 0)
                                 for c in self.checks),
                "definitely_oob": sum(c.bounds_summary.get("definitely_oob", 0)
                                      for c in self.checks),
                "bounds_events_checked": sum(c.bounds_events_checked
                                             for c in self.checks),
                "oob_events_observed": sum(c.oob_events_observed
                                           for c in self.checks),
                "loops": sum(c.loops for c in self.checks),
                "parallel_loops": sum(c.parallel_loops for c in self.checks),
                "loop_frames_checked": sum(c.loop_frames_checked
                                           for c in self.checks),
                "loop_frames_skipped": sum(c.loop_frames_skipped
                                           for c in self.checks),
                "loop_claims_stale": sum(c.loop_claims_stale
                                         for c in self.checks),
                "violations": len(self.violations()),
            },
        }
        if run_info is not None:
            record["run"] = dict(run_info)
        return record


# -- per-program driver --------------------------------------------------------


def check_clients_program(program, *, detector_factory=None,
                          checker_factory=None,
                          limits: Optional[InterpreterLimits] = None
                          ) -> ClientCheck:
    """Run the full differential check of both clients for one program.

    ``detector_factory`` / ``checker_factory`` take ``(module, manager)``
    and are injectable so the test-suite can feed deliberately broken
    clients through the validator and assert they are caught.
    """
    config = program.config
    module = program.module
    check = ClientCheck(program=config.name, seed=config.seed)
    inputs = execution_inputs(config)
    replay = {
        "program": config.name,
        "seed": config.seed,
        "instances": config.instances,
        "rng_key": config.rng_key,
        "mix": dict(sorted(config.mix.items())) if config.mix else None,
        "argv": inputs.argv(),
    }

    manager = AnalysisManager(module)
    detector = detector_factory(module, manager) if detector_factory \
        else manager.get(keys.BOUNDS)
    checker = checker_factory(module, manager) if checker_factory \
        else manager.get(keys.PARALLEL)
    bounds_report = detector.module_report()
    loops_report = checker.module_report()
    check.bounds_summary = dict(bounds_report["summary"])
    check.loops = loops_report["summary"]["loops"]
    check.parallel_loops = loops_report["summary"]["parallel"]

    interpreter = Interpreter(module, limits=limits)
    trace = interpreter.run_main(inputs.argv())
    check.executed = trace.completed
    check.stop_reason = trace.stop_reason
    check.steps = trace.steps
    check.truncated = any(frame.truncated for frame in trace.frames)
    check.oob_events_observed = sum(
        1 for event in trace.accesses if not event.in_extent)

    events_checked, bounds_violations = validate_bounds(
        config.name, trace, bounds_report, replay)
    check.bounds_events_checked = events_checked
    check.violations.extend(bounds_violations)

    frames_checked, frames_skipped, claims_stale, loop_violations = \
        validate_loops(config.name, module, trace, loops_report, replay)
    check.loop_frames_checked = frames_checked
    check.loop_frames_skipped = frames_skipped
    check.loop_claims_stale = claims_stale
    check.violations.extend(loop_violations)
    return check


# -- sharded corpus driver -----------------------------------------------------


def _clients_shard_worker(
        shard: Sequence[Tuple[int, GeneratorConfig, int]]
) -> List[Tuple[int, ClientCheck]]:
    """Check one shard of corpus programs (runs inside a worker process)."""
    results: List[Tuple[int, ClientCheck]] = []
    for corpus_index, config, max_steps in shard:
        program = generate_module(config)
        limits = InterpreterLimits(max_steps=max_steps)
        results.append((corpus_index,
                        check_clients_program(program, limits=limits)))
    return results


def run_clients(configs: Optional[Sequence[GeneratorConfig]] = None,
                jobs: Optional[int] = None,
                max_steps: int = InterpreterLimits.max_steps) -> ClientsReport:
    """Run the differential check over a corpus, sharded like the oracle."""
    configs = list(configs if configs is not None else clients_corpus())
    jobs = resolve_jobs(jobs)
    items = [(index, config, max_steps)
             for index, config in enumerate(configs)]
    shards = partition(items, jobs)
    checks = merge_indexed(map_shards(_clients_shard_worker, shards, jobs))
    return ClientsReport(checks=checks)


# -- command line --------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.clients",
        description="Differential evaluation of the bounds and "
                    "loop-parallelization clients versus concrete executions.")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_EVAL_JOBS or 1)")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke corpus: 22 suite programs + "
                             f"{QUICK_EXTRA_PROGRAMS} fuzz programs")
    parser.add_argument("--extra", type=int, default=None,
                        help="number of generated fuzz programs beyond the suite")
    parser.add_argument("--seed", type=int, default=17,
                        help="base seed of the fuzz slice of the corpus")
    parser.add_argument("--max-steps", type=int,
                        default=InterpreterLimits.max_steps,
                        help="interpreter step budget per program")
    parser.add_argument("--min-programs", type=int, default=0,
                        help="fail unless at least this many programs executed")
    parser.add_argument("--check", action="store_true",
                        help="gate mode: additionally require every corpus "
                             "program to have executed to completion")
    parser.add_argument("--compare", nargs=2, metavar=("A", "B"), default=None,
                        help="compare two bench records (volatile fields "
                             "stripped) instead of running")
    parser.add_argument("--out", default="BENCH_clients.json",
                        help="report output path")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.compare is not None:
        diffs = compare_bench_files(args.compare[0], args.compare[1])
        for diff in diffs:
            print(diff)
        print(f"{len(diffs)} difference(s)")
        return 1 if diffs else 0

    extra = args.extra
    if extra is None:
        extra = QUICK_EXTRA_PROGRAMS if args.quick \
            else 3 * QUICK_EXTRA_PROGRAMS
    configs = clients_corpus(extra=extra, seed=args.seed)
    jobs = resolve_jobs(args.jobs)

    started = time.perf_counter()
    report = run_clients(configs, jobs=jobs, max_steps=args.max_steps)
    elapsed = time.perf_counter() - started

    record = report.as_record(run_info={
        "jobs": jobs,
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "total_wall_seconds": elapsed,
    })
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(to_canonical_json(record))

    executed = report.programs_executed()
    violations = report.violations()
    totals = record["totals"]
    print(f"wrote {args.out}: {executed}/{len(report.checks)} programs "
          f"executed, {totals['accesses_classified']} accesses classified "
          f"({totals['safe']} safe / {totals['maybe_oob']} maybe / "
          f"{totals['definitely_oob']} definite), "
          f"{totals['parallel_loops']}/{totals['loops']} loops parallel, "
          f"{totals['bounds_events_checked']} events and "
          f"{totals['loop_frames_checked']} loop frames checked, "
          f"{len(violations)} violation(s) ({elapsed:.2f}s wall, jobs={jobs})")
    for violation in violations[:20]:
        print(f"  [{violation.kind}] {violation.program}/{violation.function} "
              f"{violation.query} — {violation.detail}")
    if violations:
        return 1
    if executed < args.min_programs:
        print(f"only {executed} programs executed "
              f"(< --min-programs {args.min_programs})")
        return 2
    if args.check and executed < len(report.checks):
        print(f"--check: {len(report.checks) - executed} corpus program(s) "
              f"did not execute to completion")
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
