"""Sharded parallel evaluation runner.

The paper's evaluation is embarrassingly parallel: every benchmark program
is generated, compiled and analysed independently, and only the final
tables aggregate across programs.  This module partitions the corpus into
deterministic shards, fans each shard out to a ``multiprocessing`` worker —
each worker regenerates its programs and constructs its own
:class:`~repro.engine.manager.AnalysisManager` per module, since IR object
graphs never cross process boundaries — and merges the per-shard results
back into the exact corpus order the serial path produces.

Determinism contract:

* ``jobs=1`` (the default, also via ``REPRO_EVAL_JOBS``) takes the serial
  code path unchanged — bit-identical to calling the experiments directly.
* ``jobs>1`` produces the same reports modulo wall-time fields: query
  counts, no-alias counts, solver-step totals and engine cache counters are
  computed per program and merged in corpus order, so they cannot depend on
  scheduling.  :func:`strip_volatile` removes exactly the wall-time-derived
  fields; the CI determinism gate diffs what remains byte for byte.

Command line::

    python -m repro.evaluation.parallel --quick --jobs 4 \
        --out BENCH_eval.json --manifest CORPUS_MANIFEST.json
    python -m repro.evaluation.parallel --compare A.json B.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..benchgen import build_program, corpus_manifest, select_programs, suite_configs
from ..engine.manager import AnalysisManager, ManagerStatistics
from .harness import ProgramResult, frontend_fingerprint, run_queries
from .precision import (
    PrecisionReport,
    run_precision_experiment,
    standard_factories,
)
from .reporting import to_canonical_json
from .scalability import (
    ScalabilityPoint,
    ScalabilityReport,
    measure_point,
    run_scalability_experiment,
    scalability_configs,
)

__all__ = [
    "JOBS_ENV",
    "resolve_jobs",
    "partition",
    "merge_indexed",
    "map_shards",
    "run_parallel_precision",
    "run_parallel_scalability",
    "bench_record",
    "strip_volatile",
    "diff_records",
    "compare_bench_files",
    "write_json",
    "main",
]

#: Environment knob read when no explicit ``jobs`` argument is given.
JOBS_ENV = "REPRO_EVAL_JOBS"

#: Quick-mode corpus for the CI smoke + determinism-gate jobs: small suite
#: programs plus a 12-point sweep — big enough that sharding pays off, small
#: enough to finish in seconds.
QUICK_PRECISION_PROGRAMS = ("allroots", "fixoutput", "anagram", "ft",
                            "compiler", "ks", "gnugo", "loader")
QUICK_MAX_PAIRS = 500
QUICK_SCALABILITY_POINTS = 12

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The worker count: explicit argument, else ``REPRO_EVAL_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


def partition(items: Sequence[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` deterministic round-robin shards.

    Shard ``i`` receives ``items[i::n]``.  Round-robin (rather than
    contiguous blocks) balances the Figure-15 sweep, whose program sizes
    grow monotonically with index; no shard is ever empty.
    """
    if not items:
        return []
    count = max(1, min(int(shards), len(items)))
    return [list(items[index::count]) for index in range(count)]


def merge_indexed(shard_results: Sequence[Sequence[Tuple[int, R]]]) -> List[R]:
    """Flatten per-shard ``(corpus_index, value)`` pairs back into corpus order."""
    merged = [pair for shard in shard_results for pair in shard]
    merged.sort(key=lambda pair: pair[0])
    return [value for _, value in merged]


def map_shards(worker: Callable[[T], R], payloads: Sequence[T],
               jobs: Optional[int] = None) -> List[R]:
    """``[worker(p) for p in payloads]``, fanned out over ``jobs`` processes.

    Results come back in payload order (``Pool.map`` preserves it); with
    ``jobs=1`` or a single payload no pool is created at all.
    """
    jobs = resolve_jobs(jobs)
    payloads = list(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    with multiprocessing.get_context().Pool(processes=min(jobs, len(payloads))) as pool:
        return pool.map(worker, payloads)


# -- precision ----------------------------------------------------------------

def _precision_shard_worker(
        shard: Sequence[Tuple[int, str, Optional[int]]]
) -> List[Tuple[int, ProgramResult]]:
    """Evaluate one shard of suite programs (runs inside a worker process)."""
    factories = standard_factories()
    results: List[Tuple[int, ProgramResult]] = []
    for corpus_index, name, max_pairs_per_function in shard:
        program = build_program(name)
        manager = AnalysisManager(program.module)
        result = run_queries(name, program.module, factories,
                             max_pairs_per_function, manager=manager)
        result.frontend = frontend_fingerprint(program.source, program.module)
        results.append((corpus_index, result))
    return results


def run_parallel_precision(program_names: Optional[Sequence[str]] = None,
                           max_programs: Optional[int] = None,
                           max_pairs_per_function: Optional[int] = None,
                           jobs: Optional[int] = None) -> PrecisionReport:
    """The Figure 13/14 experiment, sharded over ``jobs`` worker processes."""
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return run_precision_experiment(program_names, max_programs,
                                        max_pairs_per_function)
    names = [program.name for program in select_programs(program_names, max_programs)]
    items = [(index, name, max_pairs_per_function)
             for index, name in enumerate(names)]
    shards = partition(items, jobs)
    return PrecisionReport(results=merge_indexed(
        map_shards(_precision_shard_worker, shards, jobs)))


# -- scalability --------------------------------------------------------------

def _scalability_shard_worker(shard) -> List[Tuple[int, ScalabilityPoint]]:
    """Measure one shard of Figure-15 points (runs inside a worker process)."""
    return [(corpus_index, measure_point(config)) for corpus_index, config in shard]


def run_parallel_scalability(program_count: int = 50,
                             smallest: int = 2,
                             largest: int = 60,
                             seed: int = 7,
                             jobs: Optional[int] = None) -> ScalabilityReport:
    """The Figure-15 sweep, sharded over ``jobs`` worker processes.

    Solver-step counts ride along with each merged point, so the report's
    hardware-independent cost totals are identical to the serial sweep's.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return run_scalability_experiment(program_count, smallest, largest, seed)
    items = list(enumerate(scalability_configs(program_count, smallest, largest, seed)))
    shards = partition(items, jobs)
    return ScalabilityReport(points=merge_indexed(
        map_shards(_scalability_shard_worker, shards, jobs)))


# -- benchmark records --------------------------------------------------------

#: Keys whose values derive from wall time (stripped before determinism diffs).
_VOLATILE_KEY_SUFFIXES = ("_seconds", "_per_second", "_ns")
_VOLATILE_KEYS = frozenset({"run", "correlations"})


def _program_result_record(result: ProgramResult) -> Dict[str, Any]:
    return {
        "program": result.program,
        "queries": result.queries,
        "no_alias": dict(result.no_alias),
        "query_seconds": dict(result.query_seconds),
        "build_seconds": dict(result.build_seconds),
        "extra": {name: dict(extra) for name, extra in result.extra.items()},
        "engine": dict(result.engine),
        "solver": {name: dict(entry) for name, entry in result.solver.items()},
        # Token/IR digests: non-volatile by design, so the determinism gate
        # and the perf-smoke compare fail on any frontend output change.
        "frontend": dict(result.frontend),
    }


def bench_record(precision: Optional[PrecisionReport] = None,
                 scalability: Optional[ScalabilityReport] = None,
                 run_info: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """One JSON-ready record of an evaluation run.

    Wall-time-derived values live only under keys :func:`strip_volatile`
    removes (``*_seconds``, ``*_per_second``, ``correlations``, ``run``);
    everything else — query counts, no-alias counts, solver steps, engine
    cache counters — is deterministic and gated on in CI.
    """
    record: Dict[str, Any] = {"schema": 1}
    if precision is not None:
        totals = precision.totals()
        engine_totals = ManagerStatistics()
        solver_totals: Dict[str, Dict[str, int]] = {}
        for result in precision.results:
            if result.engine:
                engine_totals.merge(ManagerStatistics(**result.engine))
            for problem, entry in result.solver.items():
                bucket = solver_totals.setdefault(problem,
                                                  {"steps": 0, "transfer_ns": 0})
                bucket["steps"] += entry.get("steps", 0)
                bucket["transfer_ns"] += entry.get("transfer_ns", 0)
        record["precision"] = {
            "programs": [_program_result_record(result) for result in precision.results],
            "totals": {
                "queries": totals.queries,
                "no_alias": dict(totals.no_alias),
                "extra": {name: dict(extra) for name, extra in totals.extra.items()},
                "engine": engine_totals.as_dict(),
                "solver": solver_totals,
            },
        }
    if scalability is not None:
        record["scalability"] = {
            "points": [{
                "name": point.name,
                "instructions": point.instructions,
                "pointers": point.pointers,
                "solver_steps": point.solver_steps,
                "analysis_seconds": point.analysis_seconds,
            } for point in scalability.points],
            "totals": {
                "instructions": scalability.total_instructions(),
                "pointers": scalability.total_pointers(),
                "solver_steps": scalability.total_solver_steps(),
                "analysis_seconds": scalability.total_seconds(),
            },
            "steps_per_instruction": scalability.steps_per_instruction(),
            "steps_correlation": scalability.correlation_steps_vs_instructions(),
            "correlations": {
                "time_vs_instructions": scalability.correlation_time_vs_instructions(),
                "time_vs_pointers": scalability.correlation_time_vs_pointers(),
            },
            "instructions_per_second": scalability.instructions_per_second(),
        }
    if run_info is not None:
        record["run"] = dict(run_info)
    return record


def strip_volatile(payload: Any) -> Any:
    """Recursively drop every wall-time-derived field of a bench record."""
    if isinstance(payload, dict):
        return {key: strip_volatile(value) for key, value in payload.items()
                if key not in _VOLATILE_KEYS
                and not key.endswith(_VOLATILE_KEY_SUFFIXES)}
    if isinstance(payload, list):
        return [strip_volatile(value) for value in payload]
    return payload


def diff_records(a: Any, b: Any, path: str = "$") -> List[str]:
    """Human-readable paths where two (stripped) records disagree."""
    if isinstance(a, dict) and isinstance(b, dict):
        diffs: List[str] = []
        for key in sorted(set(a) | set(b)):
            if key not in a:
                diffs.append(f"{path}.{key}: only in second")
            elif key not in b:
                diffs.append(f"{path}.{key}: only in first")
            else:
                diffs.extend(diff_records(a[key], b[key], f"{path}.{key}"))
        return diffs
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [f"{path}: list length {len(a)} != {len(b)}"]
        diffs = []
        for index, (left, right) in enumerate(zip(a, b)):
            diffs.extend(diff_records(left, right, f"{path}[{index}]"))
        return diffs
    if a != b:
        return [f"{path}: {a!r} != {b!r}"]
    return []


def compare_bench_files(path_a: str, path_b: str) -> List[str]:
    """Differences between two bench JSON files, ignoring wall-time fields."""
    with open(path_a, "r", encoding="utf-8") as handle:
        record_a = json.load(handle)
    with open(path_b, "r", encoding="utf-8") as handle:
        record_b = json.load(handle)
    return diff_records(strip_volatile(record_a), strip_volatile(record_b))


def write_json(path: str, payload: Any) -> None:
    """Write ``payload`` as canonical JSON (byte-stable across runs)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_canonical_json(payload))


# -- command line -------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.parallel",
        description="Sharded parallel evaluation runner (precision + scalability).")
    parser.add_argument("--jobs", type=int, default=None,
                        help=f"worker processes (default: ${JOBS_ENV} or 1)")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke corpus: {len(QUICK_PRECISION_PROGRAMS)} "
                             f"small precision programs, "
                             f"{QUICK_SCALABILITY_POINTS} scalability points")
    parser.add_argument("--programs", nargs="*", default=None, metavar="NAME",
                        help="restrict the precision suite to these programs")
    parser.add_argument("--max-programs", type=int, default=None)
    parser.add_argument("--max-pairs", type=int, default=None,
                        help="cap on enumerated pointer pairs per function")
    parser.add_argument("--points", type=int, default=None,
                        help="number of Figure-15 scalability points (default 50)")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed of the scalability sweep")
    parser.add_argument("--skip-precision", action="store_true")
    parser.add_argument("--skip-scalability", action="store_true")
    parser.add_argument("--out", default="BENCH_eval.json",
                        help="bench record output path")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="also emit the corpus manifest to PATH")
    parser.add_argument("--compare", nargs=2, metavar=("A", "B"), default=None,
                        help="diff two bench records ignoring wall-time fields; "
                             "exit 1 on any difference")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.compare is not None:
        diffs = compare_bench_files(*args.compare)
        if diffs:
            print(f"{len(diffs)} non-wall-time difference(s):")
            for line in diffs:
                print(f"  {line}")
            return 1
        print("identical modulo wall-time fields")
        return 0

    jobs = resolve_jobs(args.jobs)
    programs = args.programs
    max_pairs = args.max_pairs
    points = args.points if args.points is not None else 50
    if args.quick:
        programs = list(QUICK_PRECISION_PROGRAMS) if programs is None else programs
        max_pairs = QUICK_MAX_PAIRS if max_pairs is None else max_pairs
        points = args.points if args.points is not None else QUICK_SCALABILITY_POINTS

    started = time.perf_counter()
    precision = None if args.skip_precision else run_parallel_precision(
        programs, args.max_programs, max_pairs, jobs=jobs)
    scalability = None if args.skip_scalability else run_parallel_scalability(
        program_count=points, seed=args.seed, jobs=jobs)
    elapsed = time.perf_counter() - started

    record = bench_record(precision, scalability, run_info={
        "jobs": jobs,
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "total_wall_seconds": elapsed,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    })
    write_json(args.out, record)
    print(f"wrote {args.out} (jobs={jobs}, {elapsed:.2f}s wall)")

    if args.manifest:
        # The manifest documents exactly what this run evaluated — skipped
        # experiments contribute no entries.
        configs = [] if args.skip_precision else suite_configs(programs, args.max_programs)
        if not args.skip_scalability:
            configs += scalability_configs(program_count=points, seed=args.seed)
        write_json(args.manifest, corpus_manifest(configs))
        print(f"wrote {args.manifest} ({len(configs)} programs)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
