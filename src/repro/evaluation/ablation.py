"""Ablation study over the design choices DESIGN.md calls out.

The paper motivates several design decisions without measuring them in
isolation; this experiment quantifies each one on the synthetic suite:

* **global-only vs. local-only vs. both** — how much each test contributes
  (Section 2 argues they are complementary);
* **no descending sequence** — the value of the narrowing steps after
  widening (Section 3.4);
* **intraprocedural only** — the value of binding actuals to formals
  (Section 3.1);
* **no e-SSA** — the value of live-range splitting at conditionals
  (Section 3.8's sparsity argument; without σ nodes the ranges of loop
  pointers never tighten).

Run directly with ``python -m repro.evaluation.ablation``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..benchgen import build_program, build_suite, select_programs
from ..core import GlobalAnalysisOptions, RBAAAliasAnalysis, RBAAOptions
from ..engine.manager import AnalysisManager
from ..frontend import compile_source
from ..ir.module import Module
from ..transforms import PipelineOptions
from .harness import run_queries
from .reporting import format_table

__all__ = ["AblationVariant", "ABLATION_VARIANTS", "run_ablation", "format_ablation"]


def _default_rbaa(module: Module, manager=None) -> RBAAAliasAnalysis:
    return RBAAAliasAnalysis(module, manager=manager)


def _global_only(module: Module, manager=None) -> RBAAAliasAnalysis:
    return RBAAAliasAnalysis(module, RBAAOptions(enable_local_test=False),
                             manager=manager)


def _local_only(module: Module, manager=None) -> RBAAAliasAnalysis:
    return RBAAAliasAnalysis(module, RBAAOptions(enable_global_test=False),
                             manager=manager)


def _no_descending(module: Module, manager=None) -> RBAAAliasAnalysis:
    return RBAAAliasAnalysis(
        module, RBAAOptions(global_options=GlobalAnalysisOptions(descending_passes=0)),
        manager=manager)


def _intraprocedural(module: Module, manager=None) -> RBAAAliasAnalysis:
    return RBAAAliasAnalysis(
        module, RBAAOptions(global_options=GlobalAnalysisOptions(interprocedural=False)),
        manager=manager)


@dataclass(frozen=True)
class AblationVariant:
    """One configuration compared by the ablation study."""

    name: str
    description: str
    factory: Callable[[Module], RBAAAliasAnalysis]
    #: When set, the suite programs are recompiled with these pipeline
    #: options before the analysis runs (used for the "no e-SSA" variant).
    pipeline: Optional[PipelineOptions] = None


ABLATION_VARIANTS: List[AblationVariant] = [
    AblationVariant("full", "global + local tests, widening + narrowing", _default_rbaa),
    AblationVariant("global-only", "disable the local test", _global_only),
    AblationVariant("local-only", "disable the global test", _local_only),
    AblationVariant("no-narrowing", "skip the descending sequence", _no_descending),
    AblationVariant("intraproc", "no actual-to-formal binding", _intraprocedural),
    AblationVariant("no-essa", "skip σ insertion (no live-range splitting)", _default_rbaa,
                    PipelineOptions(build_essa=False)),
]


def _ablation_program_worker(payload: Tuple[str, Optional[int]]
                             ) -> Dict[str, Tuple[int, int]]:
    """All ablation variants over one suite program (one parallel work unit).

    Keeping the variants of a program together in one worker preserves the
    serial path's optimisation: every non-recompiling variant shares one
    :class:`AnalysisManager` (one range bootstrap) for the module.
    """
    name, max_pairs_per_function = payload
    program = build_program(name)
    shared_manager = AnalysisManager(program.module)
    per_variant: Dict[str, Tuple[int, int]] = {}
    for variant in ABLATION_VARIANTS:
        module = program.module
        manager = shared_manager
        if variant.pipeline is not None:
            module = compile_source(program.source, name,
                                    pipeline_options=variant.pipeline)
            manager = AnalysisManager(module)
        result = run_queries(name, module, [("rbaa", variant.factory)],
                             max_pairs_per_function, manager=manager)
        per_variant[variant.name] = (result.queries, result.no_alias.get("rbaa", 0))
    return per_variant


def run_ablation(program_names: Optional[Sequence[str]] = None,
                 max_programs: Optional[int] = 6,
                 max_pairs_per_function: Optional[int] = 2000,
                 jobs: int = 1) -> Dict[str, Tuple[int, int]]:
    """Run every variant over (a slice of) the suite.

    Returns ``{variant name: (queries, no-alias answers)}``.  ``jobs > 1``
    shards the programs over worker processes; the per-variant totals are
    identical to the serial run's because every (variant, program) cell is
    computed independently and summed in a fixed order.
    """
    if jobs > 1:
        from .parallel import map_shards
        names = [program.name for program in select_programs(program_names, max_programs)]
        per_program = map_shards(_ablation_program_worker,
                                 [(name, max_pairs_per_function) for name in names],
                                 jobs)
        totals: Dict[str, Tuple[int, int]] = {}
        for variant in ABLATION_VARIANTS:
            queries = sum(cells[variant.name][0] for cells in per_program)
            no_alias = sum(cells[variant.name][1] for cells in per_program)
            totals[variant.name] = (queries, no_alias)
        return totals
    suite = build_suite(program_names, max_programs)
    totals: Dict[str, Tuple[int, int]] = {}
    # One manager per module: the range bootstrap and location table are
    # shared across every ablation variant analysing the same module (the
    # variants differ only in test selection and GR options).
    managers: Dict[int, AnalysisManager] = {}
    for variant in ABLATION_VARIANTS:
        queries = 0
        no_alias = 0
        for name, program in suite.items():
            module = program.module
            if variant.pipeline is not None:
                module = compile_source(program.source, name,
                                        pipeline_options=variant.pipeline)
            manager = managers.setdefault(id(module), AnalysisManager(module))
            result = run_queries(name, module, [("rbaa", variant.factory)],
                                 max_pairs_per_function, manager=manager)
            queries += result.queries
            no_alias += result.no_alias.get("rbaa", 0)
        totals[variant.name] = (queries, no_alias)
    return totals


def format_ablation(totals: Dict[str, Tuple[int, int]]) -> str:
    rows = []
    for variant in ABLATION_VARIANTS:
        if variant.name not in totals:
            continue
        queries, no_alias = totals[variant.name]
        percentage = 100.0 * no_alias / queries if queries else 0.0
        rows.append([variant.name, variant.description, queries, no_alias,
                     f"{percentage:.2f}"])
    return format_table(["Variant", "Description", "#Queries", "noalias", "%"],
                        rows, title="Ablation — contribution of each design choice")


def main() -> None:  # pragma: no cover - manual entry point
    print(format_ablation(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
