"""Plain-text, CSV and canonical-JSON rendering of the evaluation results."""

from __future__ import annotations

import csv
import io
import json
from typing import List, Optional, Sequence

__all__ = ["format_table", "table_to_csv", "to_canonical_json"]


def to_canonical_json(payload: object) -> str:
    """One canonical JSON encoding (sorted keys, fixed separators, newline).

    Bench records and corpus manifests are emitted through this function so
    that "same results" means "byte-identical files" — which is what the CI
    determinism gate diffs.
    """
    return json.dumps(payload, sort_keys=True, indent=2,
                      separators=(",", ": "), ensure_ascii=False) + "\n"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table (the shape of the paper's figures)."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) if index else cell.ljust(widths[index])
                         for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def table_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same table as CSV text (for EXPERIMENTS.md appendices)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()
