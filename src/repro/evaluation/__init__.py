"""Evaluation harness: the experiments behind every table and figure."""

from .ablation import ABLATION_VARIANTS, AblationVariant, format_ablation, run_ablation
from .census import CensusResult, census_for_module, format_census, run_census, total_census
from .harness import ProgramResult, QueryPair, enumerate_query_pairs, run_queries
from .precision import (
    PrecisionReport,
    figure13_rows,
    figure14_rows,
    format_figure13,
    format_figure14,
    run_precision_experiment,
    standard_factories,
)
from .parallel import (
    bench_record,
    compare_bench_files,
    map_shards,
    merge_indexed,
    partition,
    resolve_jobs,
    run_parallel_precision,
    run_parallel_scalability,
    strip_volatile,
)
from .reporting import format_table, table_to_csv, to_canonical_json
from .scalability import (
    ScalabilityPoint,
    ScalabilityReport,
    format_figure15,
    measure_point,
    pearson_correlation,
    run_scalability_experiment,
    scalability_configs,
)

__all__ = [
    "ABLATION_VARIANTS",
    "AblationVariant",
    "format_ablation",
    "run_ablation",
    "CensusResult",
    "census_for_module",
    "format_census",
    "run_census",
    "total_census",
    "ProgramResult",
    "QueryPair",
    "enumerate_query_pairs",
    "run_queries",
    "PrecisionReport",
    "figure13_rows",
    "figure14_rows",
    "format_figure13",
    "format_figure14",
    "run_precision_experiment",
    "standard_factories",
    "format_table",
    "table_to_csv",
    "to_canonical_json",
    "bench_record",
    "compare_bench_files",
    "map_shards",
    "merge_indexed",
    "partition",
    "resolve_jobs",
    "run_parallel_precision",
    "run_parallel_scalability",
    "strip_volatile",
    "ScalabilityPoint",
    "ScalabilityReport",
    "format_figure15",
    "measure_point",
    "pearson_correlation",
    "run_scalability_experiment",
    "scalability_configs",
]
