"""repro — a reproduction of "Symbolic Range Analysis of Pointers" (CGO 2016).

The package implements, from scratch in Python, every system the paper's
evaluation depends on:

* a mini-C frontend and an SSA/e-SSA compiler IR (:mod:`repro.frontend`,
  :mod:`repro.ir`, :mod:`repro.analysis`, :mod:`repro.transforms`);
* the symbolic expression algebra and ``SymbRanges`` interval lattice
  (:mod:`repro.symbolic`) with the Blume–Eigenmann-style integer range
  analysis and a scalar-evolution engine (:mod:`repro.rangeanalysis`);
* **the paper's contribution** — the global (GR) and local (LR) symbolic
  range analyses of pointers and the resulting alias queries
  (:mod:`repro.core`);
* a shared analysis engine: the SCC-ordered sparse fixpoint solver every
  analysis runs on, and the :class:`AnalysisManager` that caches analyses
  per module behind typed keys (:mod:`repro.engine`);
* baseline alias analyses (``basicaa``-style heuristics, SCEV-based,
  Andersen, Steensgaard) and their chaining (:mod:`repro.aliases`);
* a synthetic benchmark substrate and the harness regenerating every table
  and figure of the evaluation (:mod:`repro.benchgen`,
  :mod:`repro.evaluation`).

Quickstart::

    from repro import compile_source, RBAAAliasAnalysis

    module = compile_source(open("program.c").read())
    analysis = RBAAAliasAnalysis(module)
    p, q = ...  # two pointer SSA values from the module
    print(analysis.alias_pointers(p, q))
"""

from .aliases import (
    AliasAnalysis,
    AliasResult,
    AndersenAliasAnalysis,
    BasicAliasAnalysis,
    CombinedAliasAnalysis,
    MemoryAccess,
    SCEVAliasAnalysis,
    SteensgaardAliasAnalysis,
)
from .core import (
    GlobalAnalysisOptions,
    GlobalRangeAnalysis,
    LocalRangeAnalysis,
    LocationTable,
    PointerAbstractValue,
    RBAAAliasAnalysis,
    RBAAOptions,
)
from .engine import AnalysisKey, AnalysisManager, SparseProblem, SparseSolver, keys
from .frontend import compile_source
from .rangeanalysis import ScalarEvolution, SymbolicRangeAnalysis
from .symbolic import SymbolicInterval, sym

__version__ = "1.0.0"

__all__ = [
    "AliasAnalysis",
    "AliasResult",
    "AndersenAliasAnalysis",
    "BasicAliasAnalysis",
    "CombinedAliasAnalysis",
    "MemoryAccess",
    "SCEVAliasAnalysis",
    "SteensgaardAliasAnalysis",
    "GlobalAnalysisOptions",
    "GlobalRangeAnalysis",
    "LocalRangeAnalysis",
    "LocationTable",
    "PointerAbstractValue",
    "RBAAAliasAnalysis",
    "RBAAOptions",
    "AnalysisKey",
    "AnalysisManager",
    "SparseProblem",
    "SparseSolver",
    "keys",
    "compile_source",
    "ScalarEvolution",
    "SymbolicRangeAnalysis",
    "SymbolicInterval",
    "sym",
    "__version__",
]
