"""Basic blocks: straight-line instruction sequences ended by a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from .instructions import BranchInst, Instruction, PhiInst, SigmaInst
from .types import LABEL
from .values import Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .function import Function

__all__ = ["BasicBlock"]


class BasicBlock(Value):
    """A node of the control-flow graph.

    Successors are derived from the block's terminator; predecessor lists
    are maintained by :class:`~repro.ir.function.Function` when blocks are
    linked.  φ and σ instructions must appear before any other instruction
    (σs sit right after the φs, at the point where the e-SSA transformation
    splits live ranges).
    """

    __slots__ = ("parent", "instructions")

    def __init__(self, name: str = "", parent: Optional["Function"] = None):
        super().__init__(LABEL, name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- naming ------------------------------------------------------------
    def label(self) -> str:
        return f"%{self.name}" if self.name else "%<block>"

    # -- instruction management --------------------------------------------
    def append(self, instruction: Instruction) -> Instruction:
        """Append ``instruction`` (must not already belong to a block)."""
        if instruction.parent is not None:
            raise ValueError("instruction already belongs to a block")
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        if instruction.parent is not None:
            raise ValueError("instruction already belongs to a block")
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    def insert_before_terminator(self, instruction: Instruction) -> Instruction:
        """Insert just before the terminator (or append when there is none)."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.insert(len(self.instructions) - 1, instruction)
        return self.append(instruction)

    def insert_phi(self, phi: PhiInst) -> PhiInst:
        """Insert a φ at the top of the block (after existing φs)."""
        index = 0
        while index < len(self.instructions) and isinstance(self.instructions[index], PhiInst):
            index += 1
        self.insert(index, phi)
        return phi

    def insert_sigma(self, sigma: SigmaInst) -> SigmaInst:
        """Insert a σ after the φs and any earlier σs."""
        index = 0
        while index < len(self.instructions) and isinstance(
            self.instructions[index], (PhiInst, SigmaInst)
        ):
            index += 1
        self.insert(index, sigma)
        return sigma

    def remove_instruction(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.parent = None

    # -- structure -----------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        terminator = self.terminator
        if isinstance(terminator, BranchInst):
            # Deduplicate in case both edges point at the same block.
            targets: List[BasicBlock] = []
            for target in terminator.targets():
                if target not in targets:
                    targets.append(target)
            return targets
        return []

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [block for block in self.parent.blocks if self in block.successors()]

    def phis(self) -> List[PhiInst]:
        return [inst for inst in self.instructions if isinstance(inst, PhiInst)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [inst for inst in self.instructions if not isinstance(inst, PhiInst)]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label()} ({len(self.instructions)} insts)>"
