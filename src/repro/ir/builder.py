"""IRBuilder: convenience API for constructing IR.

The frontend lowering, the synthetic benchmark generator and many tests
build programs through this class.  The builder keeps an insertion point
(a basic block) and hands every created instruction a unique name.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreeInst,
    ICmpInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
    UnreachableInst,
)
from .types import INT32, INT8, PointerType, Type, VoidType
from .values import ConstantInt, NullPointer, UndefValue, Value

__all__ = ["IRBuilder"]


class _BatchScope:
    """Context manager returned by :meth:`IRBuilder.batched`."""

    __slots__ = ("_builder",)

    def __init__(self, builder: "IRBuilder"):
        self._builder = builder

    def __enter__(self) -> "IRBuilder":
        self._builder._batching = True
        return self._builder

    def __exit__(self, *exc_info: object) -> None:
        builder = self._builder
        builder._flush()
        builder._batching = False


class IRBuilder:
    """Builds instructions at an insertion point inside a function.

    The builder has an optional *batched* mode (:meth:`batched`) used by the
    frontend lowering: instead of appending to the insertion block one
    ``BasicBlock.append`` call at a time, instructions accumulate in a
    pending list and land in the block in one ``list.extend`` when the
    insertion point moves (or the batch scope exits).  Inside a batch scope
    use :meth:`is_terminated` rather than peeking at
    ``builder.block.instructions`` — pending instructions are not yet
    visible in the block (reading the :attr:`block` property flushes first,
    so external callers always observe a consistent block).
    """

    __slots__ = ("_block", "_batching", "_pending")

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block = block
        self._batching = False
        self._pending: list = []

    # -- positioning -----------------------------------------------------------
    @property
    def block(self) -> Optional[BasicBlock]:
        if self._pending:
            self._flush()
        return self._block

    @property
    def function(self) -> Optional[Function]:
        return self._block.parent if self._block is not None else None

    def position_at_end(self, block: BasicBlock) -> None:
        if self._pending:
            self._flush()
        self._block = block

    # -- batching --------------------------------------------------------------
    def batched(self) -> _BatchScope:
        """Enter batched insertion: one ``extend`` per block, not one append
        per instruction."""
        return _BatchScope(self)

    def _flush(self) -> None:
        pending = self._pending
        if pending:
            self._block.instructions.extend(pending)
            self._pending = []

    def is_terminated(self) -> bool:
        """True when the current block (including pending instructions) ends
        in a terminator."""
        if self._pending:
            return self._pending[-1].is_terminator()
        block = self._block
        if block is None:
            return False
        instructions = block.instructions
        return bool(instructions) and instructions[-1].is_terminator()

    def _insert(self, instruction: Instruction, name_prefix: str) -> Instruction:
        block = self._block
        if block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        if not isinstance(instruction.type, VoidType):
            function = block.parent
            if instruction.name:
                # Caller-provided names are made unique within the function so
                # repeated lowering of the same source name cannot collide.
                instruction.name = function.uniquify_name(instruction.name)
            else:
                instruction.name = function.next_value_name(name_prefix)
        if self._batching:
            if instruction.parent is not None:
                raise ValueError("instruction already belongs to a block")
            instruction.parent = block
            self._pending.append(instruction)
        else:
            block.append(instruction)
        return instruction

    # -- constants -----------------------------------------------------------------
    @staticmethod
    def int_const(value: int, type_: Type = INT32) -> ConstantInt:
        return ConstantInt(value, type_)

    @staticmethod
    def null(pointer_type: PointerType) -> NullPointer:
        return NullPointer(pointer_type)

    @staticmethod
    def undef(type_: Type) -> UndefValue:
        return UndefValue(type_)

    # -- arithmetic ------------------------------------------------------------------
    def binary(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._insert(BinaryInst(opcode, lhs, rhs, name), name or "t")

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("srem", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmpInst:
        return self._insert(ICmpInst(predicate, lhs, rhs, name), name or "cmp")

    def select(self, condition: Value, true_value: Value, false_value: Value,
               name: str = "") -> SelectInst:
        return self._insert(SelectInst(condition, true_value, false_value, name), name or "sel")

    def cast(self, kind: str, value: Value, target_type: Type, name: str = "") -> CastInst:
        return self._insert(CastInst(kind, value, target_type, name), name or "cast")

    # -- memory ------------------------------------------------------------------------
    def alloca(self, allocated_type: Type, count: Optional[Value] = None,
               name: str = "") -> AllocaInst:
        return self._insert(AllocaInst(allocated_type, count, name), name or "a")

    def malloc(self, size: Value, pointee: Type = INT8, name: str = "") -> MallocInst:
        return self._insert(MallocInst(size, pointee, name), name or "m")

    def free(self, pointer: Value, name: str = "") -> FreeInst:
        return self._insert(FreeInst(pointer, name), name or "f")

    def ptradd(self, base: Value, index: Optional[Value] = None, *, scale: int = 1,
               offset: int = 0, result_type: Optional[Type] = None,
               name: str = "") -> PtrAddInst:
        return self._insert(PtrAddInst(base, index, scale=scale, offset=offset,
                                       result_type=result_type, name=name),
                            name or "p")

    def load(self, pointer: Value, result_type: Optional[Type] = None,
             name: str = "") -> LoadInst:
        return self._insert(LoadInst(pointer, result_type, name), name or "ld")

    def store(self, value: Value, pointer: Value) -> StoreInst:
        return self._insert(StoreInst(value, pointer), "st")

    # -- SSA constructs -----------------------------------------------------------------
    def phi(self, type_: Type, name: str = "") -> PhiInst:
        if self._pending:
            # φs insert at the block top: pending appends must land first.
            self._flush()
        phi = PhiInst(type_, name or self._block.parent.next_value_name("phi"))
        self._block.insert_phi(phi)
        phi.parent = self._block  # insert_phi sets parent; keep explicit for clarity
        return phi

    def sigma(self, source: Value, *, lower: Optional[Value] = None,
              upper: Optional[Value] = None, lower_adjust: int = 0,
              upper_adjust: int = 0, name: str = "") -> SigmaInst:
        if self._pending:
            self._flush()
        sigma = SigmaInst(source, lower=lower, upper=upper, lower_adjust=lower_adjust,
                          upper_adjust=upper_adjust, origin_block=self._block,
                          name=name or self._block.parent.next_value_name("sig"))
        self._block.insert_sigma(sigma)
        return sigma

    # -- calls / control flow --------------------------------------------------------------
    def call(self, callee: Union[Function, str], args: Sequence[Value],
             return_type: Type = INT32, name: str = "") -> CallInst:
        if isinstance(callee, Function):
            return_type = callee.return_type
        call = CallInst(callee, args, return_type, name)
        prefix = name or "call"
        return self._insert(call, prefix)

    def branch(self, target: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(target), "br")

    def cond_branch(self, condition: Value, true_target: BasicBlock,
                    false_target: BasicBlock) -> BranchInst:
        return self._insert(
            BranchInst(condition=condition, true_target=true_target, false_target=false_target),
            "br",
        )

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self._insert(ReturnInst(value), "ret")

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst(), "unreachable")
