"""IRBuilder: convenience API for constructing IR.

The frontend lowering, the synthetic benchmark generator and many tests
build programs through this class.  The builder keeps an insertion point
(a basic block) and hands every created instruction a unique name.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreeInst,
    ICmpInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
    UnreachableInst,
)
from .types import INT32, INT8, PointerType, Type, VOID
from .values import ConstantInt, NullPointer, UndefValue, Value

__all__ = ["IRBuilder"]


class IRBuilder:
    """Builds instructions at an insertion point inside a function."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block = block

    # -- positioning -----------------------------------------------------------
    @property
    def block(self) -> Optional[BasicBlock]:
        return self._block

    @property
    def function(self) -> Optional[Function]:
        return self._block.parent if self._block is not None else None

    def position_at_end(self, block: BasicBlock) -> None:
        self._block = block

    def _insert(self, instruction: Instruction, name_prefix: str) -> Instruction:
        if self._block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        if instruction.type != VOID:
            if instruction.name:
                # Caller-provided names are made unique within the function so
                # repeated lowering of the same source name cannot collide.
                instruction.name = self._block.parent.uniquify_name(instruction.name)
            else:
                instruction.name = self._block.parent.next_value_name(name_prefix)
        self._block.append(instruction)
        return instruction

    # -- constants -----------------------------------------------------------------
    @staticmethod
    def int_const(value: int, type_: Type = INT32) -> ConstantInt:
        return ConstantInt(value, type_)

    @staticmethod
    def null(pointer_type: PointerType) -> NullPointer:
        return NullPointer(pointer_type)

    @staticmethod
    def undef(type_: Type) -> UndefValue:
        return UndefValue(type_)

    # -- arithmetic ------------------------------------------------------------------
    def binary(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._insert(BinaryInst(opcode, lhs, rhs, name), name or "t")

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self.binary("srem", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmpInst:
        return self._insert(ICmpInst(predicate, lhs, rhs, name), name or "cmp")

    def select(self, condition: Value, true_value: Value, false_value: Value,
               name: str = "") -> SelectInst:
        return self._insert(SelectInst(condition, true_value, false_value, name), name or "sel")

    def cast(self, kind: str, value: Value, target_type: Type, name: str = "") -> CastInst:
        return self._insert(CastInst(kind, value, target_type, name), name or "cast")

    # -- memory ------------------------------------------------------------------------
    def alloca(self, allocated_type: Type, count: Optional[Value] = None,
               name: str = "") -> AllocaInst:
        return self._insert(AllocaInst(allocated_type, count, name), name or "a")

    def malloc(self, size: Value, pointee: Type = INT8, name: str = "") -> MallocInst:
        return self._insert(MallocInst(size, pointee, name), name or "m")

    def free(self, pointer: Value, name: str = "") -> FreeInst:
        return self._insert(FreeInst(pointer, name), name or "f")

    def ptradd(self, base: Value, index: Optional[Value] = None, *, scale: int = 1,
               offset: int = 0, result_type: Optional[Type] = None,
               name: str = "") -> PtrAddInst:
        return self._insert(PtrAddInst(base, index, scale=scale, offset=offset,
                                       result_type=result_type, name=name),
                            name or "p")

    def load(self, pointer: Value, result_type: Optional[Type] = None,
             name: str = "") -> LoadInst:
        return self._insert(LoadInst(pointer, result_type, name), name or "ld")

    def store(self, value: Value, pointer: Value) -> StoreInst:
        return self._insert(StoreInst(value, pointer), "st")

    # -- SSA constructs -----------------------------------------------------------------
    def phi(self, type_: Type, name: str = "") -> PhiInst:
        phi = PhiInst(type_, name or self._block.parent.next_value_name("phi"))
        self._block.insert_phi(phi)
        phi.parent = self._block  # insert_phi sets parent; keep explicit for clarity
        return phi

    def sigma(self, source: Value, *, lower: Optional[Value] = None,
              upper: Optional[Value] = None, lower_adjust: int = 0,
              upper_adjust: int = 0, name: str = "") -> SigmaInst:
        sigma = SigmaInst(source, lower=lower, upper=upper, lower_adjust=lower_adjust,
                          upper_adjust=upper_adjust, origin_block=self._block,
                          name=name or self._block.parent.next_value_name("sig"))
        self._block.insert_sigma(sigma)
        return sigma

    # -- calls / control flow --------------------------------------------------------------
    def call(self, callee: Union[Function, str], args: Sequence[Value],
             return_type: Type = INT32, name: str = "") -> CallInst:
        if isinstance(callee, Function):
            return_type = callee.return_type
        call = CallInst(callee, args, return_type, name)
        prefix = name or "call"
        return self._insert(call, prefix)

    def branch(self, target: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(target), "br")

    def cond_branch(self, condition: Value, true_target: BasicBlock,
                    false_target: BasicBlock) -> BranchInst:
        return self._insert(
            BranchInst(condition=condition, true_target=true_target, false_target=false_target),
            "br",
        )

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self._insert(ReturnInst(value), "ret")

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst(), "unreachable")
