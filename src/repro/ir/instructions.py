"""Instruction set of the intermediate representation.

The instruction set is a superset of the paper's core language (Figure 6):

=====================  =====================================================
Paper construct        IR instruction
=====================  =====================================================
``p = malloc(i)``      :class:`MallocInst` (and :class:`AllocaInst` for
                       stack allocations, which are locations too)
``p = free(p1)``       :class:`FreeInst`
``p0 = p1 + i``        :class:`PtrAddInst` with a variable index
``p0 = p1 + c``        :class:`PtrAddInst` with a constant offset
``p0 = p1 ∩ [l, u]``   :class:`SigmaInst` (e-SSA bound intersection)
``p0 = *p1``           :class:`LoadInst`
``*p0 = p1``           :class:`StoreInst`
``p0 = φ(p1, p2)``     :class:`PhiInst`
``bnz(v, l)``          :class:`BranchInst` (conditional)
``jump(l)``            :class:`BranchInst` (unconditional)
=====================  =====================================================

plus the ordinary scalar instructions a realistic frontend needs (binary
arithmetic, comparisons, casts, calls, select, return).

Data-flow operands are tracked through use lists; branch targets and φ
incoming blocks are kept as plain attributes because the analyses only need
the data-flow graph to be sparse.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from .types import BOOL, INT32, PointerType, Type, VOID
from .values import ConstantInt, Use, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .basicblock import BasicBlock
    from .function import Function

__all__ = [
    "Instruction",
    "BinaryInst",
    "ICmpInst",
    "CastInst",
    "AllocaInst",
    "MallocInst",
    "FreeInst",
    "PtrAddInst",
    "LoadInst",
    "StoreInst",
    "PhiInst",
    "SigmaInst",
    "CallInst",
    "SelectInst",
    "BranchInst",
    "ReturnInst",
    "UnreachableInst",
    "BINARY_OPCODES",
    "ICMP_PREDICATES",
    "CAST_KINDS",
]

#: Binary opcodes understood by :class:`BinaryInst`.
BINARY_OPCODES = (
    "add", "sub", "mul", "sdiv", "srem",
    "and", "or", "xor", "shl", "ashr",
    "fadd", "fsub", "fmul", "fdiv",
)

#: Comparison predicates understood by :class:`ICmpInst`.
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")

#: Cast kinds understood by :class:`CastInst`.
CAST_KINDS = ("trunc", "sext", "zext", "bitcast", "ptrtoint", "inttoptr", "sitofp", "fptosi")


class Instruction(Value):
    """Base class of all instructions.  An instruction is also a value (its result)."""

    __slots__ = ("opcode", "parent", "_operands")

    def __init__(self, opcode: str, type_: Type, operands: Sequence[Value] = (), name: str = ""):
        # Inlined Value.__init__ plus direct use-list registration: this
        # constructor runs once per IR instruction and is on the cold-compile
        # hot path, so it avoids the append_operand/add_use call chain.
        self.type = type_
        self.name = name
        self.uses: List[Use] = []
        self.opcode = opcode
        self.parent: Optional["BasicBlock"] = None
        self._operands = ops = list(operands)
        for index, operand in enumerate(ops):
            operand.uses.append(Use(self, index))

    # -- operand management ---------------------------------------------------
    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(self, index)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def drop_all_operands(self) -> None:
        for index, operand in enumerate(self._operands):
            operand.remove_use(self, index)
        self._operands = []

    # -- placement -------------------------------------------------------------
    def erase_from_parent(self) -> None:
        """Remove the instruction from its block and drop its operand uses."""
        if self.parent is not None:
            self.parent.remove_instruction(self)
        self.drop_all_operands()

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    # -- classification ----------------------------------------------------------
    def is_terminator(self) -> bool:
        return isinstance(self, (BranchInst, ReturnInst, UnreachableInst))

    def defines_value(self) -> bool:
        """True when the instruction produces an SSA value."""
        return not isinstance(self.type, type(VOID)) or self.type != VOID

    def is_allocation_site(self) -> bool:
        """True for instructions that create a fresh memory location."""
        return isinstance(self, (MallocInst, AllocaInst))

    def may_read_memory(self) -> bool:
        return isinstance(self, (LoadInst, CallInst))

    def may_write_memory(self) -> bool:
        return isinstance(self, (StoreInst, CallInst, FreeInst))

    def __repr__(self) -> str:
        operand_text = ", ".join(op.short_name() for op in self._operands)
        if self.type == VOID:
            return f"{self.opcode} {operand_text}"
        return f"{self.short_name()} = {self.opcode} {operand_text}"


class BinaryInst(Instruction):
    """A two-operand arithmetic/bitwise instruction."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        super().__init__(opcode, lhs.type, (lhs, rhs), name)

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class ICmpInst(Instruction):
    """An integer/pointer comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        super().__init__("icmp", BOOL, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    _INVERSES = {"eq": "ne", "ne": "eq", "slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt"}
    _SWAPS = {"eq": "eq", "ne": "ne", "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle"}

    def inverse_predicate(self) -> str:
        """Predicate that holds on the false edge of a branch on this compare."""
        return self._INVERSES[self.predicate]

    def swapped_predicate(self) -> str:
        """Predicate with the operands exchanged."""
        return self._SWAPS[self.predicate]

    def __repr__(self) -> str:
        return (f"{self.short_name()} = icmp {self.predicate} "
                f"{self.lhs.short_name()}, {self.rhs.short_name()}")


class CastInst(Instruction):
    """A value conversion.  Pointer casts preserve the points-to target."""

    __slots__ = ("kind",)

    def __init__(self, kind: str, value: Value, target_type: Type, name: str = ""):
        if kind not in CAST_KINDS:
            raise ValueError(f"unknown cast kind {kind!r}")
        super().__init__(kind, target_type, (value,), name)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operand(0)

    def __repr__(self) -> str:
        return (f"{self.short_name()} = {self.kind} {self.value.short_name()} "
                f"to {self.type!r}")


class AllocaInst(Instruction):
    """A stack allocation: an allocation site with a statically known layout.

    ``allocated_type`` is the type of one element and ``count`` the number of
    elements (a constant for scalars/arrays, possibly a variable for VLAs).
    """

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: Type, count: Value = None, name: str = ""):
        count = count if count is not None else ConstantInt(1)
        super().__init__("alloca", PointerType(allocated_type), (count,), name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Value:
        return self.operand(0)

    def allocation_size_bytes(self) -> Optional[int]:
        """Total byte size when the element count is a constant, else ``None``."""
        if isinstance(self.count, ConstantInt):
            return self.allocated_type.size_in_bytes() * self.count.value
        return None

    def __repr__(self) -> str:
        return (f"{self.short_name()} = alloca {self.allocated_type!r}, "
                f"count {self.count.short_name()}")


class MallocInst(Instruction):
    """A heap allocation of ``size`` bytes: the paper's ``p = malloc(i)``."""

    __slots__ = ()

    def __init__(self, size: Value, pointee: Type = None, name: str = ""):
        from .types import INT8  # default to a byte buffer
        pointee = pointee if pointee is not None else INT8
        super().__init__("malloc", PointerType(pointee), (size,), name)

    @property
    def size(self) -> Value:
        return self.operand(0)

    def __repr__(self) -> str:
        return f"{self.short_name()} = malloc {self.size.short_name()}"


class FreeInst(Instruction):
    """Deallocation: the paper's ``p0 = free(p1)``.

    The result value is a pointer bound to *no* location by the analyses
    (an empty abstract state), which is how use-after-free pointers become
    trivially disjoint from everything.
    """

    __slots__ = ()

    def __init__(self, pointer: Value, name: str = ""):
        super().__init__("free", pointer.type, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    def __repr__(self) -> str:
        return f"{self.short_name()} = free {self.pointer.short_name()}"


class PtrAddInst(Instruction):
    """Pointer arithmetic: ``result = base + index * scale + offset`` (bytes).

    This single shape subsumes LLVM's ``getelementptr`` for the purposes of
    the analyses: array indexing uses a variable ``index`` and an element
    ``scale``, struct field selection uses a constant ``offset``, and plain
    pointer increments use ``index = None``.
    """

    __slots__ = ("scale", "offset")

    def __init__(self, base: Value, index: Optional[Value] = None, *,
                 scale: int = 1, offset: int = 0, result_type: Type = None,
                 name: str = ""):
        operands = (base,) if index is None else (base, index)
        super().__init__("ptradd", result_type if result_type is not None else base.type,
                         operands, name)
        self.scale = int(scale)
        self.offset = int(offset)

    @property
    def base(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Optional[Value]:
        return self.operand(1) if len(self._operands) > 1 else None

    def constant_byte_offset(self) -> Optional[int]:
        """The total byte offset when it is statically known."""
        if self.index is None:
            return self.offset
        if isinstance(self.index, ConstantInt):
            return self.index.value * self.scale + self.offset
        return None

    def __repr__(self) -> str:
        parts = [self.base.short_name()]
        if self.index is not None:
            parts.append(f"{self.index.short_name()} x {self.scale}")
        if self.offset or self.index is None:
            parts.append(str(self.offset))
        return f"{self.short_name()} = ptradd " + " + ".join(parts)


class LoadInst(Instruction):
    """Memory read: ``result = *pointer``."""

    __slots__ = ()

    def __init__(self, pointer: Value, result_type: Type = None, name: str = ""):
        if result_type is None:
            pointer_type = pointer.type
            result_type = pointer_type.pointee if isinstance(pointer_type, PointerType) else INT32
        super().__init__("load", result_type, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    def __repr__(self) -> str:
        return f"{self.short_name()} = load {self.pointer.short_name()}"


class StoreInst(Instruction):
    """Memory write: ``*pointer = value``."""

    __slots__ = ()

    def __init__(self, value: Value, pointer: Value):
        super().__init__("store", VOID, (value, pointer))

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)

    def __repr__(self) -> str:
        return f"store {self.value.short_name()}, {self.pointer.short_name()}"


class PhiInst(Instruction):
    """An SSA φ-function.  Incoming blocks are kept alongside the operands."""

    __slots__ = ("incoming_blocks",)

    def __init__(self, type_: Type, name: str = ""):
        super().__init__("phi", type_, (), name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_value_for(self, block: "BasicBlock") -> Optional[Value]:
        for value, incoming_block in self.incoming():
            if incoming_block is block:
                return value
        return None

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"[{value.short_name()}, {block.label()}]" for value, block in self.incoming()
        )
        return f"{self.short_name()} = phi {pairs}"


class SigmaInst(Instruction):
    """An e-SSA bound intersection: ``result = source ∩ [lower, upper]``.

    The bounds are IR values (or ``None`` for ±infinity) plus small constant
    adjustments, so ``i2 = i1 ∩ [-inf, e-1]`` is represented with
    ``upper=e, upper_adjust=-1``.  A σ lives at the top of one successor of a
    conditional branch; ``origin_block`` records which branch created it.
    """

    __slots__ = ("lower_adjust", "upper_adjust", "_has_lower", "_has_upper", "origin_block")

    def __init__(self, source: Value, *, lower: Optional[Value] = None,
                 upper: Optional[Value] = None, lower_adjust: int = 0,
                 upper_adjust: int = 0, origin_block: "BasicBlock" = None,
                 name: str = ""):
        operands: List[Value] = [source]
        self._has_lower = lower is not None
        self._has_upper = upper is not None
        if lower is not None:
            operands.append(lower)
        if upper is not None:
            operands.append(upper)
        super().__init__("sigma", source.type, operands, name)
        self.lower_adjust = lower_adjust
        self.upper_adjust = upper_adjust
        self.origin_block = origin_block

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def lower(self) -> Optional[Value]:
        return self.operand(1) if self._has_lower else None

    @property
    def upper(self) -> Optional[Value]:
        if not self._has_upper:
            return None
        return self.operand(2 if self._has_lower else 1)

    def __repr__(self) -> str:
        lower_text = (f"{self.lower.short_name()}{self.lower_adjust:+d}".replace("+0", "")
                      if self.lower is not None else "-inf")
        upper_text = (f"{self.upper.short_name()}{self.upper_adjust:+d}".replace("+0", "")
                      if self.upper is not None else "+inf")
        return (f"{self.short_name()} = sigma {self.source.short_name()} "
                f"∩ [{lower_text}, {upper_text}]")


class CallInst(Instruction):
    """A call, either to a function in the module or to an external name.

    External calls (``strlen``, ``atoi``…) produce kernel symbols for the
    range analysis and are handled conservatively by the alias analyses
    unless the callee is a known pure/read-only library routine.
    """

    __slots__ = ("callee",)

    def __init__(self, callee: Union["Function", str], args: Sequence[Value],
                 return_type: Type, name: str = ""):
        super().__init__("call", return_type, tuple(args), name)
        self.callee = callee

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands

    def callee_name(self) -> str:
        if isinstance(self.callee, str):
            return self.callee
        return self.callee.name

    def is_external(self) -> bool:
        return isinstance(self.callee, str)

    def __repr__(self) -> str:
        arg_text = ", ".join(arg.short_name() for arg in self.args)
        prefix = f"{self.short_name()} = " if self.type != VOID else ""
        return f"{prefix}call @{self.callee_name()}({arg_text})"


class SelectInst(Instruction):
    """``result = condition ? true_value : false_value``."""

    __slots__ = ()

    def __init__(self, condition: Value, true_value: Value, false_value: Value, name: str = ""):
        super().__init__("select", true_value.type, (condition, true_value, false_value), name)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


class BranchInst(Instruction):
    """A conditional (``bnz``) or unconditional (``jump``) branch terminator."""

    __slots__ = ("true_target", "false_target")

    def __init__(self, target: "BasicBlock" = None, *, condition: Value = None,
                 true_target: "BasicBlock" = None, false_target: "BasicBlock" = None):
        if condition is None:
            super().__init__("br", VOID, ())
            self.true_target = target if target is not None else true_target
            self.false_target = None
        else:
            super().__init__("br", VOID, (condition,))
            self.true_target = true_target
            self.false_target = false_target

    @property
    def condition(self) -> Optional[Value]:
        return self.operand(0) if self._operands else None

    def is_conditional(self) -> bool:
        return bool(self._operands)

    def targets(self) -> List["BasicBlock"]:
        result = [self.true_target]
        if self.false_target is not None:
            result.append(self.false_target)
        return result

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.true_target is old:
            self.true_target = new
        if self.false_target is old:
            self.false_target = new

    def __repr__(self) -> str:
        if not self.is_conditional():
            return f"br {self.true_target.label()}"
        return (f"br {self.condition.short_name()}, {self.true_target.label()}, "
                f"{self.false_target.label()}")


class ReturnInst(Instruction):
    """Function return with an optional value."""

    __slots__ = ()

    def __init__(self, value: Optional[Value] = None):
        super().__init__("ret", VOID, (value,) if value is not None else ())

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self._operands else None

    def __repr__(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.short_name()}"


class UnreachableInst(Instruction):
    """Marks a block that can never be executed."""

    __slots__ = ()

    def __init__(self):
        super().__init__("unreachable", VOID, ())

    def __repr__(self) -> str:
        return "unreachable"
