"""Values of the intermediate representation.

Everything an instruction can reference is a :class:`Value`: constants,
function arguments, global variables, basic blocks (as branch targets),
functions (as callees) and instruction results.  Values maintain use lists,
which the transforms rely on (``replace_all_uses_with`` is what makes SSA and
e-SSA renaming cheap).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from .types import INT32, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instructions import Instruction

__all__ = [
    "Value",
    "Use",
    "Constant",
    "ConstantInt",
    "ConstantFloat",
    "NullPointer",
    "UndefValue",
    "Argument",
    "GlobalVariable",
]


class Use:
    """A single (user instruction, operand index) edge in the use-def graph."""

    __slots__ = ("user", "index")

    def __init__(self, user: "Instruction", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:
        return f"Use({self.user.name or self.user.opcode}, {self.index})"


class Value:
    """Base class of everything that can appear as an instruction operand."""

    __slots__ = ("type", "name", "uses")

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        self.uses: List[Use] = []

    # -- use-list maintenance ------------------------------------------------
    def add_use(self, user: "Instruction", index: int) -> None:
        self.uses.append(Use(user, index))

    def remove_use(self, user: "Instruction", index: int) -> None:
        for position, use in enumerate(self.uses):
            if use.user is user and use.index == index:
                del self.uses[position]
                return

    def users(self) -> List["Instruction"]:
        """Distinct instructions that reference this value."""
        seen: List["Instruction"] = []
        for use in self.uses:
            if use.user not in seen:
                seen.append(use.user)
        return seen

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every operand that references ``self`` to ``replacement``."""
        if replacement is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, replacement)

    # -- classification -------------------------------------------------------
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def is_pointer(self) -> bool:
        return self.type.is_pointer()

    def short_name(self) -> str:
        """Printable name used by the textual IR."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:
        return self.short_name()


class Constant(Value):
    """Base class for compile-time constants (which have no defining instruction)."""

    __slots__ = ()


class ConstantInt(Constant):
    """An integer literal of a given width."""

    __slots__ = ("value",)

    def __init__(self, value: int, type_: Type = INT32):
        super().__init__(type_, "")
        self.value = int(value)

    def short_name(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"{self.value}"


class ConstantFloat(Constant):
    """A floating-point literal."""

    __slots__ = ("value",)

    def __init__(self, value: float, type_: Type):
        super().__init__(type_, "")
        self.value = float(value)

    def short_name(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return repr(self.value)


class NullPointer(Constant):
    """The null pointer constant of a given pointer type."""

    __slots__ = ()

    def __init__(self, type_: PointerType):
        super().__init__(type_, "")

    def short_name(self) -> str:
        return "null"

    def __repr__(self) -> str:
        return "null"


class UndefValue(Constant):
    """An undefined value (used for unreachable φ inputs and the like)."""

    __slots__ = ()

    def __init__(self, type_: Type):
        super().__init__(type_, "")

    def short_name(self) -> str:
        return "undef"

    def __repr__(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a function.

    Function parameters whose concrete value is unknown are exactly the
    members of the *symbolic kernel*: the range analysis will bind parameter
    ``N`` to the symbolic interval ``[N, N]``.
    """

    __slots__ = ("parent", "index")

    def __init__(self, type_: Type, name: str, parent=None, index: int = 0):
        super().__init__(type_, name)
        self.parent = parent
        self.index = index

    def __repr__(self) -> str:
        return f"%{self.name}"


class GlobalVariable(Value):
    """A module-level variable.  Its address is an allocation site.

    ``value_type`` is the type of the stored object; the value itself has
    pointer type (referencing a global yields its address), mirroring LLVM.
    """

    __slots__ = ("value_type", "initializer", "is_constant_data")

    def __init__(self, name: str, value_type: Type,
                 initializer: Optional[Constant] = None,
                 is_constant_data: bool = False):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant_data = is_constant_data

    def short_name(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"@{self.name}"
