"""A small SSA intermediate representation.

This is the substrate the paper's analyses run on: it plays the role LLVM IR
plays in the original implementation.  See :mod:`repro.ir.instructions` for
the mapping between the paper's core language (Figure 6) and the instruction
set.
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreeInst,
    ICmpInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .printer import print_function, print_instruction, print_module
from .types import (
    ArrayType,
    BOOL,
    DOUBLE,
    FLOAT,
    FunctionType,
    INT32,
    INT64,
    INT8,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VOID,
    VoidType,
    pointer_to,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    NullPointer,
    UndefValue,
    Value,
)
from .verifier import IRVerificationFailure, VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "IRBuilder",
    "Function",
    "Module",
    "AllocaInst",
    "BinaryInst",
    "BranchInst",
    "CallInst",
    "CastInst",
    "FreeInst",
    "ICmpInst",
    "Instruction",
    "LoadInst",
    "MallocInst",
    "PhiInst",
    "PtrAddInst",
    "ReturnInst",
    "SelectInst",
    "SigmaInst",
    "StoreInst",
    "UnreachableInst",
    "print_function",
    "print_instruction",
    "print_module",
    "ArrayType",
    "BOOL",
    "DOUBLE",
    "FLOAT",
    "FunctionType",
    "INT32",
    "INT64",
    "INT8",
    "IntType",
    "LabelType",
    "PointerType",
    "StructType",
    "Type",
    "VOID",
    "VoidType",
    "pointer_to",
    "Argument",
    "Constant",
    "ConstantFloat",
    "ConstantInt",
    "GlobalVariable",
    "NullPointer",
    "UndefValue",
    "Value",
    "IRVerificationFailure",
    "VerificationError",
    "verify_function",
    "verify_module",
]
