"""Textual rendering of IR modules, functions and instructions.

The format is stable and line-oriented so tests can assert on substrings and
humans can inspect what the frontend/generator produced.  It deliberately
resembles LLVM assembly without trying to be compatible with it.
"""

from __future__ import annotations

from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreeInst,
    ICmpInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .types import VOID
from .values import GlobalVariable

__all__ = ["print_module", "print_function", "print_instruction"]


def _value_ref(value) -> str:
    return value.short_name()


def print_instruction(inst: Instruction) -> str:
    """Render one instruction as a single line (without indentation)."""
    if isinstance(inst, BinaryInst):
        return (f"{_value_ref(inst)} = {inst.opcode} {inst.type!r} "
                f"{_value_ref(inst.lhs)}, {_value_ref(inst.rhs)}")
    if isinstance(inst, ICmpInst):
        return (f"{_value_ref(inst)} = icmp {inst.predicate} "
                f"{_value_ref(inst.lhs)}, {_value_ref(inst.rhs)}")
    if isinstance(inst, CastInst):
        return f"{_value_ref(inst)} = {inst.kind} {_value_ref(inst.value)} to {inst.type!r}"
    if isinstance(inst, AllocaInst):
        return (f"{_value_ref(inst)} = alloca {inst.allocated_type!r}, "
                f"count {_value_ref(inst.count)}")
    if isinstance(inst, MallocInst):
        return f"{_value_ref(inst)} = malloc {_value_ref(inst.size)}"
    if isinstance(inst, FreeInst):
        return f"{_value_ref(inst)} = free {_value_ref(inst.pointer)}"
    if isinstance(inst, PtrAddInst):
        parts = [_value_ref(inst.base)]
        if inst.index is not None:
            parts.append(f"{_value_ref(inst.index)} * {inst.scale}")
        parts.append(str(inst.offset))
        return f"{_value_ref(inst)} = ptradd " + " + ".join(parts)
    if isinstance(inst, LoadInst):
        return f"{_value_ref(inst)} = load {inst.type!r}, {_value_ref(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {_value_ref(inst.value)}, {_value_ref(inst.pointer)}"
    if isinstance(inst, PhiInst):
        pairs = ", ".join(f"[ {_value_ref(v)}, {b.label()} ]" for v, b in inst.incoming())
        return f"{_value_ref(inst)} = phi {inst.type!r} {pairs}"
    if isinstance(inst, SigmaInst):
        lower = "-inf" if inst.lower is None else _value_ref(inst.lower)
        if inst.lower is not None and inst.lower_adjust:
            lower += f" {inst.lower_adjust:+d}"
        upper = "+inf" if inst.upper is None else _value_ref(inst.upper)
        if inst.upper is not None and inst.upper_adjust:
            upper += f" {inst.upper_adjust:+d}"
        return f"{_value_ref(inst)} = sigma {_value_ref(inst.source)}, [{lower}, {upper}]"
    if isinstance(inst, CallInst):
        args = ", ".join(_value_ref(a) for a in inst.args)
        prefix = f"{_value_ref(inst)} = " if inst.type != VOID else ""
        return f"{prefix}call {inst.type!r} @{inst.callee_name()}({args})"
    if isinstance(inst, SelectInst):
        return (f"{_value_ref(inst)} = select {_value_ref(inst.condition)}, "
                f"{_value_ref(inst.true_value)}, {_value_ref(inst.false_value)}")
    if isinstance(inst, BranchInst):
        if inst.is_conditional():
            return (f"br {_value_ref(inst.condition)}, {inst.true_target.label()}, "
                    f"{inst.false_target.label()}")
        return f"br {inst.true_target.label()}"
    if isinstance(inst, ReturnInst):
        return "ret void" if inst.value is None else f"ret {_value_ref(inst.value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    return repr(inst)


def _print_block(block: BasicBlock) -> List[str]:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return lines


def print_function(function: Function) -> str:
    """Render a function definition (or declaration)."""
    params = ", ".join(f"{arg.type!r} %{arg.name}" for arg in function.args)
    header = f"define {function.return_type!r} @{function.name}({params})"
    if function.is_declaration():
        return f"declare {function.return_type!r} @{function.name}({params})"
    lines = [header + " {"]
    for block in function.blocks:
        lines.extend(_print_block(block))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module."""
    parts: List[str] = [f"; module {module.name}"]
    for struct_name, struct_type in module.struct_types.items():
        parts.append(f"{struct_type!r} = type {{ ... }}")
    for variable in module.globals:
        assert isinstance(variable, GlobalVariable)
        parts.append(f"@{variable.name} = global {variable.value_type!r}")
    for function in module.functions:
        parts.append("")
        parts.append(print_function(function))
    return "\n".join(parts) + "\n"
