"""Structural verification of IR modules.

The verifier enforces the invariants the analyses rely on:

* every reachable block ends in exactly one terminator;
* φ-functions appear only at the top of blocks and have one incoming value
  per predecessor;
* every SSA value is defined before use (dominance is checked separately by
  the tests via :mod:`repro.analysis.dominance`; here we check block-local
  ordering and that operands belong to the same function);
* names of values are unique within a function;
* operand types are consistent: loads and stores dereference pointer-typed
  operands, conditional branches test an ``i1``, and φ/σ results carry the
  type of the values they merge.

Violations are collected as :class:`VerificationError` records; ``verify``
raises on the first batch unless ``raise_on_error=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    BinaryInst,
    BranchInst,
    Instruction,
    LoadInst,
    PhiInst,
    SigmaInst,
    StoreInst,
)
from .module import Module
from .types import BOOL
from .values import Argument, Constant, GlobalVariable, UndefValue

__all__ = ["VerificationError", "IRVerificationFailure", "verify_function", "verify_module"]


@dataclass(frozen=True)
class VerificationError:
    """One structural problem found by the verifier."""

    function: str
    message: str

    def __str__(self) -> str:
        return f"[@{self.function}] {self.message}"


class IRVerificationFailure(Exception):
    """Raised when verification finds at least one error."""

    def __init__(self, errors: List[VerificationError]):
        super().__init__("\n".join(str(error) for error in errors))
        self.errors = errors


def _check_terminators(function: Function, errors: List[VerificationError]) -> None:
    for block in function.blocks:
        terminator_positions = [
            index for index, inst in enumerate(block.instructions) if inst.is_terminator()
        ]
        if not terminator_positions:
            errors.append(VerificationError(function.name, f"block {block.name} has no terminator"))
        elif terminator_positions[-1] != len(block.instructions) - 1 \
                or len(terminator_positions) > 1:
            errors.append(VerificationError(
                function.name, f"block {block.name} has a misplaced or duplicate terminator"))
        for inst in block.instructions:
            if isinstance(inst, BranchInst):
                for target in inst.targets():
                    if target not in function.blocks:
                        errors.append(VerificationError(
                            function.name,
                            f"branch in {block.name} targets a block outside the function"))


def _check_phis(function: Function, errors: List[VerificationError]) -> None:
    for block in function.blocks:
        seen_non_phi = False
        predecessors = block.predecessors()
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                if seen_non_phi:
                    errors.append(VerificationError(
                        function.name,
                        f"phi {inst.short_name()} is not at the top of {block.name}"))
                incoming_blocks = inst.incoming_blocks
                if len(incoming_blocks) != len(inst.operands):
                    errors.append(VerificationError(
                        function.name, f"phi {inst.short_name()} has mismatched incoming lists"))
                for incoming_block in incoming_blocks:
                    if incoming_block not in predecessors:
                        errors.append(VerificationError(
                            function.name,
                            f"phi {inst.short_name()} names {incoming_block.label()} "
                            f"which is not a predecessor of {block.name}"))
            elif not isinstance(inst, SigmaInst):
                seen_non_phi = True


def _check_names(function: Function, errors: List[VerificationError]) -> None:
    seen = {}
    for value in function.values():
        if not value.name:
            continue
        if value.name in seen:
            errors.append(VerificationError(
                function.name, f"duplicate value name %{value.name}"))
        seen[value.name] = value


def _definition_index(function: Function) -> dict:
    order = {}
    position = 0
    for block in function.blocks:
        for inst in block.instructions:
            order[inst] = position
            position += 1
    return order


def _check_operands(function: Function, errors: List[VerificationError]) -> None:
    local_values = set(function.args)
    for inst in function.instructions():
        local_values.add(inst)
    for block in function.blocks:
        for inst in block.instructions:
            for operand in inst.operands:
                if isinstance(operand, (Constant, GlobalVariable, Function, BasicBlock)):
                    continue
                if isinstance(operand, (Argument, Instruction)) and operand not in local_values:
                    errors.append(VerificationError(
                        function.name,
                        f"instruction {inst.short_name() or inst.opcode} uses a value "
                        f"defined in another function: {operand.short_name()}"))
            if isinstance(inst, PhiInst):
                continue
            # Same-block straight-line order: a use must not precede its def.
            for operand in inst.operands:
                if isinstance(operand, Instruction) and operand.parent is block:
                    if block.instructions.index(operand) > block.instructions.index(inst):
                        errors.append(VerificationError(
                            function.name,
                            f"{inst.short_name() or inst.opcode} uses "
                            f"{operand.short_name()} before its definition in {block.name}"))


def _check_types(function: Function, errors: List[VerificationError]) -> None:
    """Operand/result type consistency for the memory and merge instructions."""
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, LoadInst) and not inst.pointer.type.is_pointer():
                errors.append(VerificationError(
                    function.name,
                    f"load {inst.short_name()} dereferences non-pointer "
                    f"{inst.pointer.short_name()}"))
            elif isinstance(inst, StoreInst) and not inst.pointer.type.is_pointer():
                errors.append(VerificationError(
                    function.name,
                    f"store writes through non-pointer {inst.pointer.short_name()}"))
            elif isinstance(inst, BranchInst) and inst.is_conditional() \
                    and inst.condition.type != BOOL:
                errors.append(VerificationError(
                    function.name,
                    f"conditional branch in {block.name} tests a "
                    f"non-i1 value {inst.condition.short_name()}"))
            elif isinstance(inst, PhiInst):
                for value, _ in inst.incoming():
                    if isinstance(value, UndefValue):
                        continue
                    if value.type != inst.type:
                        errors.append(VerificationError(
                            function.name,
                            f"phi {inst.short_name()} of type {inst.type!r} has "
                            f"incoming {value.short_name()} of type {value.type!r}"))
            elif isinstance(inst, SigmaInst) and inst.source.type != inst.type:
                errors.append(VerificationError(
                    function.name,
                    f"sigma {inst.short_name()} of type {inst.type!r} renames "
                    f"{inst.source.short_name()} of type {inst.source.type!r}"))
            elif isinstance(inst, BinaryInst) and inst.lhs.type != inst.rhs.type:
                errors.append(VerificationError(
                    function.name,
                    f"binary {inst.short_name() or inst.opcode} mixes operand "
                    f"types {inst.lhs.type!r} and {inst.rhs.type!r}"))


def verify_function(function: Function, raise_on_error: bool = True) -> List[VerificationError]:
    """Verify one function; returns the list of problems found."""
    errors: List[VerificationError] = []
    if function.is_declaration():
        return errors
    _check_terminators(function, errors)
    _check_phis(function, errors)
    _check_names(function, errors)
    _check_operands(function, errors)
    _check_types(function, errors)
    if errors and raise_on_error:
        raise IRVerificationFailure(errors)
    return errors


def verify_module(module: Module, raise_on_error: bool = True) -> List[VerificationError]:
    """Verify every defined function of ``module``."""
    errors: List[VerificationError] = []
    for function in module.defined_functions():
        errors.extend(verify_function(function, raise_on_error=False))
    if errors and raise_on_error:
        raise IRVerificationFailure(errors)
    return errors
