"""Modules: the whole-program unit the analyses run on."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .function import Function
from .instructions import CallInst, Instruction
from .types import FunctionType, Type
from .values import Constant, GlobalVariable

__all__ = ["Module"]


class Module:
    """A translation unit: named functions, global variables and struct types."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: List[Function] = []
        self.globals: List[GlobalVariable] = []
        self.struct_types: Dict[str, Type] = {}

    # -- functions ----------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        if self.get_function(function.name) is not None:
            raise ValueError(f"duplicate function @{function.name}")
        function.parent = self
        self.functions.append(function)
        return function

    def create_function(self, name: str, function_type: FunctionType,
                        arg_names: Optional[Sequence[str]] = None) -> Function:
        return self.add_function(Function(name, function_type, arg_names, parent=self))

    def get_function(self, name: str) -> Optional[Function]:
        for function in self.functions:
            if function.name == name:
                return function
        return None

    def defined_functions(self) -> List[Function]:
        """Functions that have a body (declarations are external)."""
        return [function for function in self.functions if not function.is_declaration()]

    def replace_function(self, replacement: Function) -> Function:
        """Swap in ``replacement`` for the same-named function (an *edit*).

        This is the module-level primitive behind function-granular
        incremental analysis: the replacement typically comes from a donor
        module (a re-compile of the edited source), so

        * operands of its instructions that reference donor globals or donor
          functions are remapped **by name** onto this module's objects;
        * call sites elsewhere in this module are retargeted from the old
          function object to the replacement;
        * the replacement takes the old function's slot (module order is
          preserved — analyses iterate functions in module order).

        The old function is detached and returned with its blocks intact —
        but with every operand use dropped — so callers (e.g.
        ``AnalysisManager.apply_function_edit``) can still enumerate its
        values to purge per-value analysis state.

        The replacement must keep the old signature; edits that add globals
        or change signatures require a full module reload.
        """
        old = self.get_function(replacement.name)
        if old is None:
            raise ValueError(f"no function @{replacement.name} to replace")
        if old is replacement:
            return old
        if old.function_type != replacement.function_type:
            raise ValueError(
                f"replace_function must preserve the signature of @{old.name}: "
                f"{old.function_type} != {replacement.function_type}")

        # Remap donor-module references inside the replacement body.
        for inst in replacement.instructions():
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, GlobalVariable):
                    target = self.get_global(operand.name)
                    if target is None:
                        raise ValueError(
                            f"replacement @{replacement.name} references unknown "
                            f"global @{operand.name}")
                    if target is not operand:
                        inst.set_operand(index, target)
                elif isinstance(operand, Function):
                    # A self-reference (recursion) maps onto the replacement
                    # itself, not the function it is about to retire.
                    target = (replacement if operand.name == replacement.name
                              else self.get_function(operand.name))
                    if target is None:
                        raise ValueError(
                            f"replacement @{replacement.name} references unknown "
                            f"function @{operand.name}")
                    if target is not operand:
                        inst.set_operand(index, target)
            if isinstance(inst, CallInst) and isinstance(inst.callee, Function):
                if inst.callee.name == replacement.name:
                    inst.callee = replacement
                else:
                    target = self.get_function(inst.callee.name)
                    inst.callee = target if target is not None else inst.callee.name

        # Retarget this module's references to the old function object.
        for function in self.functions:
            if function is old:
                continue
            for inst in function.instructions():
                if isinstance(inst, CallInst) and inst.callee is old:
                    inst.callee = replacement
                for index, operand in enumerate(inst.operands):
                    if operand is old:
                        inst.set_operand(index, replacement)

        # Detach the old body's operand uses so dangling use-list entries on
        # shared values (globals, other functions) cannot leak into escape
        # or address-taken queries.  Blocks stay so the old values remain
        # enumerable for state purges.
        for inst in old.instructions():
            inst.drop_all_operands()

        slot = self.functions.index(old)
        replacement.parent = self
        self.functions[slot] = replacement
        old.parent = None
        return old

    # -- globals --------------------------------------------------------------
    def add_global(self, variable: GlobalVariable) -> GlobalVariable:
        if self.get_global(variable.name) is not None:
            raise ValueError(f"duplicate global @{variable.name}")
        self.globals.append(variable)
        return variable

    def create_global(self, name: str, value_type: Type,
                      initializer: Optional[Constant] = None,
                      is_constant_data: bool = False) -> GlobalVariable:
        return self.add_global(GlobalVariable(name, value_type, initializer, is_constant_data))

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        for variable in self.globals:
            if variable.name == name:
                return variable
        return None

    # -- aggregates -------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for function in self.defined_functions():
            yield from function.instructions()

    def instruction_count(self) -> int:
        return sum(function.instruction_count() for function in self.defined_functions())

    def pointer_count(self) -> int:
        return sum(len(function.pointer_values()) for function in self.defined_functions())

    def __repr__(self) -> str:
        return (f"<Module {self.name!r}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
