"""Modules: the whole-program unit the analyses run on."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .function import Function
from .instructions import Instruction
from .types import FunctionType, Type
from .values import Constant, GlobalVariable

__all__ = ["Module"]


class Module:
    """A translation unit: named functions, global variables and struct types."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: List[Function] = []
        self.globals: List[GlobalVariable] = []
        self.struct_types: Dict[str, Type] = {}

    # -- functions ----------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        if self.get_function(function.name) is not None:
            raise ValueError(f"duplicate function @{function.name}")
        function.parent = self
        self.functions.append(function)
        return function

    def create_function(self, name: str, function_type: FunctionType,
                        arg_names: Optional[Sequence[str]] = None) -> Function:
        return self.add_function(Function(name, function_type, arg_names, parent=self))

    def get_function(self, name: str) -> Optional[Function]:
        for function in self.functions:
            if function.name == name:
                return function
        return None

    def defined_functions(self) -> List[Function]:
        """Functions that have a body (declarations are external)."""
        return [function for function in self.functions if not function.is_declaration()]

    # -- globals --------------------------------------------------------------
    def add_global(self, variable: GlobalVariable) -> GlobalVariable:
        if self.get_global(variable.name) is not None:
            raise ValueError(f"duplicate global @{variable.name}")
        self.globals.append(variable)
        return variable

    def create_global(self, name: str, value_type: Type,
                      initializer: Optional[Constant] = None,
                      is_constant_data: bool = False) -> GlobalVariable:
        return self.add_global(GlobalVariable(name, value_type, initializer, is_constant_data))

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        for variable in self.globals:
            if variable.name == name:
                return variable
        return None

    # -- aggregates -------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for function in self.defined_functions():
            yield from function.instructions()

    def instruction_count(self) -> int:
        return sum(function.instruction_count() for function in self.defined_functions())

    def pointer_count(self) -> int:
        return sum(len(function.pointer_values()) for function in self.defined_functions())

    def __repr__(self) -> str:
        return (f"<Module {self.name!r}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
