"""Functions: argument lists plus a CFG of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, TYPE_CHECKING

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, Type
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import Module

__all__ = ["Function"]


class Function(Value):
    """A function definition (or declaration, when it has no blocks).

    Functions own the name counter used to give every value a unique,
    stable textual name — uniqueness of names is what lets the analyses use
    plain dictionaries keyed by value.
    """

    __slots__ = ("parent", "args", "blocks", "_name_counter", "_taken_names")

    def __init__(self, name: str, function_type: FunctionType,
                 arg_names: Optional[Sequence[str]] = None,
                 parent: Optional["Module"] = None):
        super().__init__(function_type, name)
        self.parent = parent
        self.blocks: List[BasicBlock] = []
        self._name_counter = 0
        self._taken_names: Dict[str, int] = {}
        arg_names = list(arg_names or [])
        while len(arg_names) < len(function_type.param_types):
            arg_names.append(f"arg{len(arg_names)}")
        self.args: List[Argument] = [
            Argument(param_type, arg_name, parent=self, index=index)
            for index, (param_type, arg_name)
            in enumerate(zip(function_type.param_types, arg_names))
        ]
        for arg in self.args:
            self._taken_names[arg.name] = 1

    # -- signature helpers ----------------------------------------------------
    @property
    def function_type(self) -> FunctionType:
        assert isinstance(self.type, FunctionType)
        return self.type

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    def is_declaration(self) -> bool:
        """True when the function has no body (external)."""
        return not self.blocks

    # -- block management --------------------------------------------------------
    @property
    def entry_block(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    def append_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(self.uniquify_name(name or "bb"), parent=self)
        self.blocks.append(block)
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        block.parent = self
        if not block.name:
            block.name = self.uniquify_name("bb")
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def get_block(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    # -- naming --------------------------------------------------------------------
    def uniquify_name(self, base: str) -> str:
        """Return ``base`` or ``base.N`` such that the result is unused."""
        if base not in self._taken_names:
            self._taken_names[base] = 1
            return base
        while True:
            candidate = f"{base}.{self._taken_names[base]}"
            self._taken_names[base] += 1
            if candidate not in self._taken_names:
                self._taken_names[candidate] = 1
                return candidate

    def next_value_name(self, prefix: str = "v") -> str:
        self._name_counter += 1
        return self.uniquify_name(f"{prefix}{self._name_counter}")

    # -- traversal --------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def values(self) -> Iterator[Value]:
        """All SSA values defined in the function (arguments then results)."""
        yield from self.args
        for instruction in self.instructions():
            if instruction.type.size_in_bytes() != 0 or instruction.type.is_pointer():
                yield instruction

    def pointer_values(self) -> List[Value]:
        """Every pointer-typed SSA value (the query candidates)."""
        return [value for value in self.values() if value.is_pointer()]

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def short_name(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"
