"""Type system of the intermediate representation.

The IR is typed in the LLVM spirit: integers of a given bit width, floats,
pointers, sized arrays, named structs and function types.  Types carry a
byte size (:meth:`Type.size_in_bytes`) because the pointer analyses reason
about *byte offsets* from allocation sites — a field access ``&s->y`` is a
pointer plus the byte offset of ``y``, exactly what the paper's
pointer-plus-constant rule consumes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "Type",
    "VoidType",
    "IntType",
    "FloatType",
    "PointerType",
    "ArrayType",
    "StructType",
    "FunctionType",
    "LabelType",
    "VOID",
    "BOOL",
    "INT8",
    "INT32",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "LABEL",
    "pointer_to",
]


class Type:
    """Base class for all IR types. Types are immutable and interned by value."""

    __slots__ = ()

    def size_in_bytes(self) -> int:
        """Storage size of a value of this type."""
        raise NotImplementedError

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    def __repr__(self) -> str:  # pragma: no cover - subclasses override
        return self.__class__.__name__


class VoidType(Type):
    """The type of instructions that produce no value."""

    __slots__ = ()

    def size_in_bytes(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "void"

    def __eq__(self, other) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class LabelType(Type):
    """The type of basic-block labels (only used by branch operands)."""

    __slots__ = ()

    def size_in_bytes(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "label"

    def __eq__(self, other) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")


class IntType(Type):
    """An integer of ``bits`` width (i1 doubles as the boolean type)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits <= 0:
            raise ValueError("integer width must be positive")
        object.__setattr__(self, "bits", bits)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("IntType is immutable")

    def size_in_bytes(self) -> int:
        return max(1, self.bits // 8)

    def __repr__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other) -> bool:
        return isinstance(other, IntType) and self.bits == other.bits

    def __hash__(self) -> int:
        return hash(("IntType", self.bits))


class FloatType(Type):
    """An IEEE float of ``bits`` width (32 or 64)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int = 64):
        if bits not in (32, 64):
            raise ValueError("float width must be 32 or 64")
        object.__setattr__(self, "bits", bits)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("FloatType is immutable")

    def size_in_bytes(self) -> int:
        return self.bits // 8

    def __repr__(self) -> str:
        return "float" if self.bits == 32 else "double"

    def __eq__(self, other) -> bool:
        return isinstance(other, FloatType) and self.bits == other.bits

    def __hash__(self) -> int:
        return hash(("FloatType", self.bits))


class PointerType(Type):
    """A pointer to ``pointee``; all pointers are 8 bytes."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        object.__setattr__(self, "pointee", pointee)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("PointerType is immutable")

    def size_in_bytes(self) -> int:
        return 8

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"

    def __eq__(self, other) -> bool:
        return isinstance(other, PointerType) and self.pointee == other.pointee

    def __hash__(self) -> int:
        return hash(("PointerType", self.pointee))


class ArrayType(Type):
    """A fixed-size array ``[count x element]``."""

    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "count", count)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("ArrayType is immutable")

    def size_in_bytes(self) -> int:
        return self.element.size_in_bytes() * self.count

    def __repr__(self) -> str:
        return f"[{self.count} x {self.element!r}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayType)
            and self.element == other.element
            and self.count == other.count
        )

    def __hash__(self) -> int:
        return hash(("ArrayType", self.element, self.count))


class StructType(Type):
    """A named struct with ordered ``(field name, field type)`` members.

    Fields are laid out sequentially without padding; byte offsets are what
    the frontend feeds into pointer-plus-constant instructions, which is how
    the analyses disambiguate distinct fields (the "basic" baseline does the
    same through :meth:`field_offset`).
    """

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fields", tuple(fields))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("StructType is immutable")

    def size_in_bytes(self) -> int:
        return sum(field_type.size_in_bytes() for _, field_type in self.fields)

    def field_names(self) -> List[str]:
        return [field_name for field_name, _ in self.fields]

    def field_index(self, field_name: str) -> int:
        for index, (name, _) in enumerate(self.fields):
            if name == field_name:
                return index
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def field_type(self, field_name: str) -> Type:
        return self.fields[self.field_index(field_name)][1]

    def field_offset(self, field_name: str) -> int:
        """Byte offset of ``field_name`` from the start of the struct."""
        offset = 0
        for name, field_type in self.fields:
            if name == field_name:
                return offset
            offset += field_type.size_in_bytes()
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def field_offset_by_index(self, index: int) -> int:
        """Byte offset of the ``index``-th field."""
        return sum(t.size_in_bytes() for _, t in self.fields[:index])

    def __repr__(self) -> str:
        return f"%struct.{self.name}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, StructType)
            and self.name == other.name
            and self.fields == other.fields
        )

    def __hash__(self) -> int:
        return hash(("StructType", self.name, self.fields))


class FunctionType(Type):
    """A function signature ``ret(params...)`` with optional varargs."""

    __slots__ = ("return_type", "param_types", "is_vararg")

    def __init__(self, return_type: Type, param_types: Sequence[Type], is_vararg: bool = False):
        object.__setattr__(self, "return_type", return_type)
        object.__setattr__(self, "param_types", tuple(param_types))
        object.__setattr__(self, "is_vararg", is_vararg)

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("FunctionType is immutable")

    def size_in_bytes(self) -> int:
        return 0

    def __repr__(self) -> str:
        params = ", ".join(repr(t) for t in self.param_types)
        if self.is_vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type!r} ({params})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FunctionType)
            and self.return_type == other.return_type
            and self.param_types == other.param_types
            and self.is_vararg == other.is_vararg
        )

    def __hash__(self) -> int:
        return hash(("FunctionType", self.return_type, self.param_types, self.is_vararg))


VOID = VoidType()
BOOL = IntType(1)
INT8 = IntType(8)
INT32 = IntType(32)
INT64 = IntType(64)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)
LABEL = LabelType()


def pointer_to(pointee: Type) -> PointerType:
    """Convenience constructor for pointer types."""
    return PointerType(pointee)
