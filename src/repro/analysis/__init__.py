"""Classic CFG analyses: orderings, dominance, loops, liveness and call graph."""

from .callgraph import CallGraph, CallSite
from .cfg import (
    back_edges,
    is_single_entry_region,
    post_order,
    predecessor_map,
    reachable_blocks,
    reverse_post_order,
    successor_map,
)
from .dominance import DominatorTree, dominance_frontiers
from .liveness import LivenessInfo
from .loops import Loop, LoopInfo

__all__ = [
    "CallGraph",
    "CallSite",
    "back_edges",
    "is_single_entry_region",
    "post_order",
    "predecessor_map",
    "reachable_blocks",
    "reverse_post_order",
    "successor_map",
    "DominatorTree",
    "dominance_frontiers",
    "LivenessInfo",
    "Loop",
    "LoopInfo",
]
