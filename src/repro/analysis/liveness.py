"""Classic backward live-variable analysis on the SSA IR.

Liveness is used by the region-renaming transform (Section 2 of the paper
renames "every pointer p that is alive at the beginning of a single entry
region") and by tests that check the sparse-analysis space argument of
Section 3.8.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, PhiInst
from ..ir.values import Argument, Value
from .cfg import post_order

__all__ = ["LivenessInfo"]


def _is_trackable(value: Value) -> bool:
    """Only SSA values (arguments and instruction results) have live ranges."""
    return isinstance(value, (Argument, Instruction))


class LivenessInfo:
    """Per-block live-in / live-out sets of SSA values."""

    def __init__(self, function: Function,
                 live_in: Dict[BasicBlock, Set[Value]],
                 live_out: Dict[BasicBlock, Set[Value]]):
        self.function = function
        self._live_in = live_in
        self._live_out = live_out

    @classmethod
    def compute(cls, function: Function) -> "LivenessInfo":
        """Iterate the backward data-flow equations to a fixed point.

        φ-functions are handled edge-sensitively: a φ input is live out of
        the corresponding predecessor only.
        """
        use_sets: Dict[BasicBlock, Set[Value]] = {}
        def_sets: Dict[BasicBlock, Set[Value]] = {}
        phi_uses_per_pred: Dict[BasicBlock, Set[Value]] = {
            block: set() for block in function.blocks}

        for block in function.blocks:
            uses: Set[Value] = set()
            defs: Set[Value] = set()
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    defs.add(inst)
                    for value, pred in inst.incoming():
                        if _is_trackable(value):
                            phi_uses_per_pred.setdefault(pred, set()).add(value)
                    continue
                for operand in inst.operands:
                    if _is_trackable(operand) and operand not in defs:
                        uses.add(operand)
                defs.add(inst)
            use_sets[block] = uses
            def_sets[block] = defs

        live_in: Dict[BasicBlock, Set[Value]] = {block: set() for block in function.blocks}
        live_out: Dict[BasicBlock, Set[Value]] = {block: set() for block in function.blocks}

        changed = True
        order = post_order(function)
        while changed:
            changed = False
            for block in order:
                out: Set[Value] = set(phi_uses_per_pred.get(block, ()))
                for successor in block.successors():
                    out |= live_in[successor]
                new_in = use_sets[block] | (out - def_sets[block])
                if out != live_out[block] or new_in != live_in[block]:
                    live_out[block] = out
                    live_in[block] = new_in
                    changed = True
        return cls(function, live_in, live_out)

    def live_in(self, block: BasicBlock) -> Set[Value]:
        """Values live at the beginning of ``block``."""
        return set(self._live_in.get(block, set()))

    def live_out(self, block: BasicBlock) -> Set[Value]:
        """Values live at the end of ``block``."""
        return set(self._live_out.get(block, set()))

    def is_live_into(self, value: Value, block: BasicBlock) -> bool:
        return value in self._live_in.get(block, set())

    def live_pointers_into(self, block: BasicBlock) -> List[Value]:
        """Pointer-typed values live at the beginning of ``block``."""
        return [value for value in self._live_in.get(block, set()) if value.is_pointer()]
