"""Natural-loop detection.

Loops matter to the reproduction for two reasons: the scalar-evolution
baseline (``scev-aa``) only reasons about pointers indexed by loop induction
variables in closed form, and the local pointer test is most valuable for
pointers renamed at loop headers (which are φ-defining blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import PhiInst
from .cfg import predecessor_map
from .dominance import DominatorTree

__all__ = ["Loop", "LoopInfo"]


@dataclass
class Loop:
    """A natural loop: a header plus the body of blocks that reach the back edge."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    latches: List[BasicBlock] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def depth(self) -> int:
        """Nesting depth: 1 for top-level loops."""
        depth, current = 1, self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    def header_phis(self) -> List[PhiInst]:
        """The φ-functions of the header: candidate induction variables."""
        return self.header.phis()

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are successors of loop blocks."""
        exits: List[BasicBlock] = []
        for block in self.blocks:
            for successor in block.successors():
                if successor not in self.blocks and successor not in exits:
                    exits.append(successor)
        return exits

    def __repr__(self) -> str:
        return f"<Loop header={self.header.label()} blocks={len(self.blocks)} depth={self.depth()}>"


class LoopInfo:
    """All natural loops of a function, organised into a nesting forest."""

    def __init__(self, function: Function, loops: List[Loop]):
        self.function = function
        self.loops = loops
        self._loop_of_block: Dict[BasicBlock, Loop] = {}
        # Innermost loop wins: process loops from outermost to innermost.
        for loop in sorted(loops, key=lambda l: len(l.blocks), reverse=True):
            for block in loop.blocks:
                self._loop_of_block[block] = loop

    @classmethod
    def compute(cls, function: Function, dom_tree: Optional[DominatorTree] = None) -> "LoopInfo":
        """Find natural loops from back edges (tail dominated by head)."""
        dom_tree = dom_tree or DominatorTree.compute(function)
        preds = predecessor_map(function)
        loops_by_header: Dict[BasicBlock, Loop] = {}

        for block in dom_tree.reachable():
            for successor in block.successors():
                if not dom_tree.dominates(successor, block):
                    continue
                header = successor
                loop = loops_by_header.setdefault(header, Loop(header=header, blocks={header}))
                loop.latches.append(block)
                # Walk predecessors backwards from the latch up to the header.
                worklist = [block]
                while worklist:
                    current = worklist.pop()
                    if current in loop.blocks:
                        continue
                    loop.blocks.add(current)
                    worklist.extend(preds.get(current, []))

        loops = list(loops_by_header.values())
        # Establish nesting: a loop is a child of the smallest strictly-enclosing loop.
        for loop in loops:
            best_parent: Optional[Loop] = None
            for candidate in loops:
                if candidate is loop:
                    continue
                if loop.header in candidate.blocks and loop.blocks <= candidate.blocks:
                    if best_parent is None or len(candidate.blocks) < len(best_parent.blocks):
                        best_parent = candidate
            loop.parent = best_parent
            if best_parent is not None:
                best_parent.children.append(loop)
        return cls(function, loops)

    def loop_for_block(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, if any."""
        return self._loop_of_block.get(block)

    def top_level_loops(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.loop_for_block(block)
        return loop.depth() if loop is not None else 0

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)
