"""Call graph construction.

The paper's implementation is interprocedural but context-insensitive: it
"associates actual parameters with formal parameters of functions" (Section
3.1).  The call graph records exactly those actual→formal bindings so the
global analysis can seed argument abstract states, and it exposes a bottom-up
ordering (SCC condensation) so callees are analysed before callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import CallInst
from ..ir.module import Module
from ..ir.values import Value

__all__ = ["CallSite", "CallGraph"]


@dataclass(frozen=True)
class CallSite:
    """One direct call: the instruction, the caller and the resolved callee."""

    instruction: CallInst
    caller: Function
    callee: Optional[Function]  # ``None`` for calls to external names

    @property
    def callee_name(self) -> str:
        return self.instruction.callee_name()

    def argument_bindings(self) -> List[Tuple[Value, Value]]:
        """Pairs ``(formal parameter, actual argument)`` for resolved callees."""
        if self.callee is None or self.callee.is_declaration():
            return []
        return list(zip(self.callee.args, self.instruction.args))


class CallGraph:
    """Direct-call graph over the functions of a module."""

    def __init__(self, module: Module):
        self.module = module
        self.call_sites: List[CallSite] = []
        self._callees: Dict[Function, List[Function]] = {f: [] for f in module.defined_functions()}
        self._callers: Dict[Function, List[Function]] = {f: [] for f in module.defined_functions()}
        self._external_calls: Dict[Function, List[CallInst]] = {
            f: [] for f in module.defined_functions()
        }
        self._build()

    @classmethod
    def compute(cls, module: Module) -> "CallGraph":
        return cls(module)

    def _build(self) -> None:
        for function in self.module.defined_functions():
            for inst in function.instructions():
                if not isinstance(inst, CallInst):
                    continue
                callee: Optional[Function]
                if isinstance(inst.callee, Function):
                    callee = inst.callee
                else:
                    callee = self.module.get_function(inst.callee)
                if callee is not None and callee.is_declaration():
                    callee = None
                site = CallSite(instruction=inst, caller=function, callee=callee)
                self.call_sites.append(site)
                if callee is None:
                    self._external_calls[function].append(inst)
                else:
                    if callee not in self._callees[function]:
                        self._callees[function].append(callee)
                    if function not in self._callers.get(callee, []):
                        self._callers.setdefault(callee, []).append(function)

    # -- queries -------------------------------------------------------------
    def callees(self, function: Function) -> List[Function]:
        return list(self._callees.get(function, []))

    def callers(self, function: Function) -> List[Function]:
        return list(self._callers.get(function, []))

    def external_calls(self, function: Function) -> List[CallInst]:
        """Calls whose target is not defined in the module."""
        return list(self._external_calls.get(function, []))

    def sites_calling(self, function: Function) -> List[CallSite]:
        return [site for site in self.call_sites if site.callee is function]

    def sites_in(self, function: Function) -> List[CallSite]:
        return [site for site in self.call_sites if site.caller is function]

    def is_address_taken(self, function: Function) -> bool:
        """True when the function escapes as a value (conservatively: any non-call use)."""
        return any(not isinstance(use.user, CallInst) for use in function.uses)

    # -- orderings ------------------------------------------------------------
    def strongly_connected_components(self) -> List[List[Function]]:
        """Tarjan SCCs in bottom-up order (callees before callers)."""
        index_counter = [0]
        stack: List[Function] = []
        lowlink: Dict[Function, int] = {}
        index: Dict[Function, int] = {}
        on_stack: Set[Function] = set()
        components: List[List[Function]] = []

        def strongconnect(node: Function) -> None:
            # Iterative Tarjan to survive deep call chains in generated code.
            work = [(node, iter(self._callees.get(node, [])))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self._callees.get(child, []))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[current] = min(lowlink[current], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component: List[Function] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is current:
                            break
                    components.append(component)

        for function in self.module.defined_functions():
            if function not in index:
                strongconnect(function)
        return components

    def bottom_up_order(self) -> List[Function]:
        """Functions ordered so that callees come before their callers."""
        ordered: List[Function] = []
        for component in self.strongly_connected_components():
            ordered.extend(component)
        return ordered
