"""Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).

The dominator tree drives three clients:

* SSA construction (φ placement uses dominance frontiers);
* the e-SSA transformation (σ placement and renaming walk the tree);
* the local pointer analysis, which evaluates instructions "in the order
  given by the program's dominance tree" (Section 3.6 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import predecessor_map, reverse_post_order

__all__ = ["DominatorTree", "dominance_frontiers"]


class DominatorTree:
    """Immediate-dominator tree for the reachable blocks of a function."""

    def __init__(self, function: Function, idom: Dict[BasicBlock, Optional[BasicBlock]],
                 rpo: List[BasicBlock]):
        self.function = function
        self._idom = idom
        self._rpo = rpo
        self._children: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in rpo}
        for block, dominator in idom.items():
            if dominator is not None and block is not dominator:
                self._children[dominator].append(block)
        # Depth is used for fast dominance queries and for ordering.
        self._depth: Dict[BasicBlock, int] = {}
        entry = function.entry_block
        if entry is not None:
            worklist = [(entry, 0)]
            while worklist:
                block, depth = worklist.pop()
                self._depth[block] = depth
                for child in self._children.get(block, []):
                    worklist.append((child, depth + 1))

    # -- construction ---------------------------------------------------------
    @classmethod
    def compute(cls, function: Function) -> "DominatorTree":
        """Compute immediate dominators with the Cooper–Harvey–Kennedy algorithm."""
        rpo = reverse_post_order(function)
        if not rpo:
            return cls(function, {}, [])
        entry = rpo[0]
        order_index = {block: index for index, block in enumerate(rpo)}
        preds = predecessor_map(function)

        idom: Dict[BasicBlock, Optional[BasicBlock]] = {block: None for block in rpo}
        idom[entry] = entry

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while order_index[a] > order_index[b]:
                    a = idom[a]
                while order_index[b] > order_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                candidates = [p for p in preds.get(block, []) if idom.get(p) is not None]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = intersect(other, new_idom)
                if idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        return cls(function, idom, rpo)

    # -- queries -----------------------------------------------------------------
    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate dominator (the entry block is its own idom)."""
        return self._idom.get(block)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        """Blocks immediately dominated by ``block``."""
        return list(self._children.get(block, []))

    def depth(self, block: BasicBlock) -> int:
        return self._depth.get(block, -1)

    def dominates(self, dominator: BasicBlock, block: BasicBlock) -> bool:
        """True when ``dominator`` dominates ``block`` (reflexively)."""
        if dominator is block:
            return True
        current = block
        while current is not None and current is not self._idom.get(current):
            current = self._idom.get(current)
            if current is dominator:
                return True
        return dominator is self.function.entry_block and block in self._depth

    def strictly_dominates(self, dominator: BasicBlock, block: BasicBlock) -> bool:
        return dominator is not block and self.dominates(dominator, block)

    def dominated_blocks(self, root: BasicBlock) -> List[BasicBlock]:
        """All blocks dominated by ``root`` (including ``root``) in preorder."""
        result: List[BasicBlock] = []
        worklist = [root]
        while worklist:
            block = worklist.pop()
            result.append(block)
            worklist.extend(self._children.get(block, []))
        return result

    def preorder(self) -> Iterator[BasicBlock]:
        """Depth-first preorder traversal of the dominator tree."""
        entry = self.function.entry_block
        if entry is None:
            return
        worklist = [entry]
        while worklist:
            block = worklist.pop()
            yield block
            # Reverse so that children are visited in their insertion order.
            worklist.extend(reversed(self._children.get(block, [])))

    def reachable(self) -> List[BasicBlock]:
        return list(self._rpo)


def dominance_frontiers(function: Function,
                        dom_tree: Optional[DominatorTree] = None
                        ) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Dominance frontier of every reachable block (Cytron's definition)."""
    dom_tree = dom_tree or DominatorTree.compute(function)
    preds = predecessor_map(function)
    frontiers: Dict[BasicBlock, Set[BasicBlock]] = {
        block: set() for block in dom_tree.reachable()
    }
    for block in dom_tree.reachable():
        predecessors = preds.get(block, [])
        if len(predecessors) < 2:
            continue
        for predecessor in predecessors:
            if predecessor not in frontiers:
                continue  # unreachable predecessor
            runner = predecessor
            while runner is not dom_tree.idom(block) and runner is not None:
                frontiers[runner].add(block)
                if runner is dom_tree.idom(runner):
                    break
                runner = dom_tree.idom(runner)
    return frontiers
