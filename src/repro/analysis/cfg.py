"""Control-flow-graph utilities: orderings, reachability, edge classification."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function

__all__ = [
    "reverse_post_order",
    "post_order",
    "reachable_blocks",
    "predecessor_map",
    "successor_map",
    "back_edges",
    "is_single_entry_region",
]


def post_order(function: Function) -> List[BasicBlock]:
    """Blocks in post-order starting from the entry (unreachable blocks excluded)."""
    entry = function.entry_block
    if entry is None:
        return []
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    # Iterative DFS to avoid recursion limits on generated programs.
    stack: List[Tuple[BasicBlock, int]] = [(entry, 0)]
    visited.add(entry)
    while stack:
        block, child_index = stack[-1]
        successors = block.successors()
        if child_index < len(successors):
            stack[-1] = (block, child_index + 1)
            successor = successors[child_index]
            if successor not in visited:
                visited.add(successor)
                stack.append((successor, 0))
        else:
            order.append(block)
            stack.pop()
    return order


def reverse_post_order(function: Function) -> List[BasicBlock]:
    """Blocks in reverse post-order: the canonical forward data-flow order."""
    return list(reversed(post_order(function)))


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """The set of blocks reachable from the entry."""
    return set(post_order(function))


def predecessor_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Predecessor lists computed in one pass (cheaper than per-block scans)."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            preds.setdefault(successor, []).append(block)
    return preds


def successor_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Successor lists for every block."""
    return {block: block.successors() for block in function.blocks}


def back_edges(function: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """Edges ``(tail, head)`` where ``head`` dominates ``tail`` (loop back edges)."""
    from .dominance import DominatorTree  # local import to avoid a cycle

    dom_tree = DominatorTree.compute(function)
    edges: List[Tuple[BasicBlock, BasicBlock]] = []
    for block in reverse_post_order(function):
        for successor in block.successors():
            if dom_tree.dominates(successor, block):
                edges.append((block, successor))
    return edges


def is_single_entry_region(blocks: Iterable[BasicBlock], header: BasicBlock) -> bool:
    """True when control can only enter ``blocks`` through ``header``."""
    block_set = set(blocks)
    for block in block_set:
        if block is header:
            continue
        for predecessor in block.predecessors():
            if predecessor not in block_set:
                return False
    return True
