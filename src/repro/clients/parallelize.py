"""Loop parallelization: proving cross-iteration memory accesses disjoint.

The checker reports a natural loop *parallelizable* when no two memory
accesses executed in different iterations (of one execution of the loop)
can touch the same byte with at least one of them writing.  That is a
universally quantified claim over concrete executions, so the
differential validator replays it against the interpreter's iteration-
segmented access trace.

A pair of accesses (at least one store) is proven independent across
iterations by the first rule that applies:

1. **iteration-fresh** — every object both sides can reference is
   allocated by a ``malloc`` *inside* the loop: different iterations
   allocate different concrete objects, so only same-iteration overlap
   (harmless for parallelization) is possible;
2. **distinct-objects** — basicaa identifies both underlying-object sets
   and they share no allocation site;
3. **lockstep-strides** — both pointers are affine recurrences of this
   loop advancing in lock-step (SCEV-AA's model); with step ``s`` and
   same-iteration distance ``d = a - b``, a pair of iterations overlaps
   exactly when some lattice element ``d + s*k`` lands in the open
   interval ``(-wa, wb)``, so no iteration pair can overlap when
   ``wb <= d mod |s| <= |s| - wa``;
4. **footprint-disjoint** — RBAA (or basicaa) proves the *whole value
   sets* of the two pointers reference disjoint regions.  The no-alias
   claim is only accepted when every anchor value it is relative to is
   defined outside the loop — an in-loop anchor changes instances between
   iterations, which is exactly the quantifier the claim does not cover.

Everything unproven is reported non-parallelizable with the first
blocking reason — conservative by construction, like the analyses it is
built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..aliases.results import AliasResult, MemoryAccess, NoAliasClaim
from ..analysis.loops import Loop, LoopInfo
from ..engine import keys
from ..interp.trace import access_width, memory_access_table
from ..ir.function import Function
from ..ir.instructions import (
    CallInst,
    FreeInst,
    Instruction,
    LoadInst,
    MallocInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Value

__all__ = ["LoopParallelismAnalysis", "LoopAccess"]

#: Loops with more accesses than this are reported non-parallelizable
#: (never silently sampled: the cap itself is the reported reason).
MAX_LOOP_ACCESSES = 48


@dataclass(frozen=True)
class LoopAccess:
    """One load/store inside a loop body."""

    index: int                # stable access index (memory_access_table)
    inst: Instruction
    pointer: Value
    width: int
    is_store: bool


class LoopParallelismAnalysis:
    """The loop-parallelization client (Section 1's second motivating client)."""

    name = "parallel-loops"

    def __init__(self, module: Module, manager=None):
        self.module = module
        self.manager = manager
        if manager is not None:
            self.rbaa = manager.get(keys.RBAA)
            self.basic = manager.get(keys.BASIC)
            self.scev = manager.get(keys.SCEV)
        else:
            from ..aliases.basic import BasicAliasAnalysis
            from ..aliases.scev_aa import SCEVAliasAnalysis
            from ..core.rbaa import RBAAAliasAnalysis
            self.rbaa = RBAAAliasAnalysis(module)
            self.basic = BasicAliasAnalysis(module)
            self.scev = SCEVAliasAnalysis(module)
        self._reports: Dict[Function, Dict] = {}
        self._loop_info: Dict[Function, LoopInfo] = {}

    # -- incremental invalidation (manager edit hook) -----------------------
    def refresh_function(self, old_function: Function,
                         new_function: Function) -> None:
        self._reports.pop(old_function, None)
        self._loop_info.pop(old_function, None)
        if self.manager is not None:
            self.rbaa = self.manager.get(keys.RBAA)
            self.basic = self.manager.get(keys.BASIC)
            self.scev = self.manager.get(keys.SCEV)

    def loop_info(self, function: Function) -> LoopInfo:
        info = self._loop_info.get(function)
        if info is None:
            info = LoopInfo.compute(function)
            self._loop_info[function] = info
        return info

    # -- pair independence ----------------------------------------------------
    def _defined_outside(self, value: Value, loop: Loop) -> bool:
        if isinstance(value, Instruction):
            return value.parent is None or value.parent not in loop.blocks
        return True

    def _allocated_inside(self, site: Value, loop: Loop) -> bool:
        """An allocation whose every execution mints a fresh per-iteration
        object.  Restricted to ``malloc`` — allocas are normally hoisted to
        the entry block, and a hoisted slot is *not* iteration-fresh."""
        return isinstance(site, MallocInst) and site.parent is not None \
            and site.parent in loop.blocks

    def _iteration_fresh(self, access: LoopAccess, loop: Loop) -> bool:
        view = self.basic.underlying_objects(access.pointer)
        if not view.all_identified or view.includes_null or not view.objects:
            return False
        return all(self._allocated_inside(site, loop) for site in view.objects)

    def _claim_covers_iterations(self, claim: NoAliasClaim, loop: Loop) -> bool:
        """A no-alias claim extends across the iterations of one loop
        execution only when every anchor is fixed across them."""
        if claim.scope == "unchecked":
            return False
        return all(self._defined_outside(anchor, loop)
                   for anchor in claim.anchors)

    @staticmethod
    def _same_loop(recurrence_loop: Loop, loop: Loop) -> bool:
        """The SCEV engine owns its own ``LoopInfo``; natural loops are
        keyed by their (unique) header block, so compare headers."""
        return recurrence_loop.header is loop.header

    def _lockstep_independent(self, a: LoopAccess, b: LoopAccess,
                              loop: Loop) -> bool:
        rec_a = self.scev.evolution_of(a.pointer)
        rec_b = self.scev.evolution_of(b.pointer)
        if rec_a is None or rec_b is None:
            return False
        if not self._same_loop(rec_a.loop, loop) \
                or not self._same_loop(rec_b.loop, loop):
            return False
        distance = rec_a.constant_distance_from(rec_b)
        if distance is None or rec_a.step == 0:
            return False
        # Addresses a_i - b_j = distance + step*(i-j): some iteration pair
        # overlaps iff an element of that lattice lands in (-wa, wb).
        modulus = abs(rec_a.step)
        residue = distance % modulus
        return b.width <= residue <= modulus - a.width

    def _self_independent(self, access: LoopAccess, loop: Loop) -> bool:
        """One store against its own other-iteration executions."""
        rec = self.scev.evolution_of(access.pointer)
        if rec is not None and self._same_loop(rec.loop, loop) \
                and rec.step != 0 and abs(rec.step) >= access.width:
            return True
        return self._iteration_fresh(access, loop)

    def _pair_independent(self, a: LoopAccess, b: LoopAccess,
                          loop: Loop) -> bool:
        if a.pointer is b.pointer:
            return self._self_independent(a, loop) if a.width >= b.width \
                else self._self_independent(b, loop)
        if self._iteration_fresh(a, loop) and self._iteration_fresh(b, loop):
            return True
        view_a = self.basic.underlying_objects(a.pointer)
        view_b = self.basic.underlying_objects(b.pointer)
        if view_a.all_identified and view_b.all_identified \
                and not view_a.includes_null and not view_b.includes_null:
            shared = view_a.objects & view_b.objects
            if not shared:
                return True
            # A shared allocation site being in-loop is NOT enough: a
            # loop-carried pointer (p = phi [g, entry], [node, latch]) can
            # reference the *previous* iteration's malloc'd object, so
            # freshness is only sound when BOTH full object sets are
            # iteration-fresh — which rule 1 above already covers.
        if self._lockstep_independent(a, b, loop):
            return True
        access_a = MemoryAccess(a.pointer, a.width)
        access_b = MemoryAccess(b.pointer, b.width)
        for analysis in (self.rbaa, self.basic):
            if analysis.alias(access_a, access_b) is AliasResult.NO_ALIAS:
                claim = analysis.no_alias_context(access_a, access_b)
                if self._claim_covers_iterations(claim, loop):
                    return True
        return False

    # -- loop verdicts ---------------------------------------------------------
    def _loop_accesses(self, function: Function,
                       loop: Loop) -> List[LoopAccess]:
        accesses = []
        for index, inst in enumerate(memory_access_table(function)):
            if inst.parent is not None and inst.parent in loop.blocks:
                accesses.append(LoopAccess(
                    index=index, inst=inst, pointer=inst.pointer,
                    width=access_width(inst),
                    is_store=isinstance(inst, StoreInst)))
        return accesses

    def loop_verdict(self, function: Function, loop: Loop,
                     accesses: List[LoopAccess]) -> Tuple[bool, str]:
        """``(parallelizable, reason)`` for one loop.

        Override point for the mutant fixtures.  The verdict claims exactly
        memory independence: no cross-iteration overlapping access pair
        with a write.  (Loop-carried *register* dependences — reduction
        φs — are a separate obstacle to actual parallelization; the report
        surfaces them as ``carried_phis`` without affecting the verdict.)
        """
        stores = [access for access in accesses if access.is_store]
        # Scan in function instruction order (loop.blocks is a set; its
        # iteration order must never reach the report).
        for inst in function.instructions():
            if inst.parent not in loop.blocks:
                continue
            if isinstance(inst, FreeInst):
                return False, "frees-memory"
            if isinstance(inst, CallInst):
                name = inst.callee_name()
                if name is not None \
                        and self.basic.callee_accesses_no_memory(name):
                    continue
                if not stores and name is not None \
                        and self.basic.callee_is_readonly(name):
                    continue
                return False, f"calls:{name or 'indirect'}"
        if not stores:
            return True, "read-only"
        if len(accesses) > MAX_LOOP_ACCESSES:
            return False, "too-many-accesses"
        for i, a in enumerate(accesses):
            for b in accesses[i:]:
                if not a.is_store and not b.is_store:
                    continue
                if not self._pair_independent(a, b, loop):
                    return False, (f"dependent:{a.index}x{b.index}")
        return True, "proven-disjoint"

    # -- reports -------------------------------------------------------------
    def function_report(self, function: Function) -> Dict:
        cached = self._reports.get(function)
        if cached is not None:
            return cached
        info = self.loop_info(function)
        loops = []
        for loop in sorted(info.loops, key=lambda l: l.header.label()):
            accesses = self._loop_accesses(function, loop)
            parallel, reason = self.loop_verdict(function, loop, accesses)
            loops.append({
                "header": loop.header.label(),
                "depth": loop.depth(),
                "blocks": len(loop.blocks),
                "accesses": len(accesses),
                "carried_phis": len(loop.header_phis()),
                "parallel": parallel,
                "reason": reason,
            })
        report = {"function": function.name, "loops": loops,
                  "summary": {"loops": len(loops),
                              "parallel": sum(1 for l in loops
                                              if l["parallel"])}}
        self._reports[function] = report
        return report

    def module_report(self, function: Optional[str] = None) -> Dict:
        names = sorted(f.name for f in self.module.defined_functions()
                       if function is None or f.name == function)
        functions = [self.function_report(self.module.get_function(name))
                     for name in names]
        summary = {"loops": 0, "parallel": 0}
        for report in functions:
            summary["loops"] += report["summary"]["loops"]
            summary["parallel"] += report["summary"]["parallel"]
        return {"functions": functions, "summary": summary}
