"""Out-of-bounds detection: symbolic offset intervals versus object extents.

For every load and store, the detector asks whether the access footprint —
the pointer's symbolic offset interval extended by the access width, the
same :func:`~repro.core.queries.extend_for_access` semantics the alias
tests use — provably fits inside (or provably escapes) the extent of every
object the pointer may reference:

* the **points-to path** reads RBAA's global abstract state: each
  ``location → offset interval`` binding is compared against the
  location's extent (global type size, ``alloca`` size, the symbolic
  range of a ``malloc``'s size operand);
* the **decomposition path** walks basicaa's ``base + constant offset``
  view, catching constant accesses whose interval widened away.

Each access is classified ``safe`` (provably in bounds for every
execution), ``definitely-oob`` (provably out of bounds for every
execution) or ``maybe-oob`` (everything unprovable).  Both definite
verdicts are universally quantified and therefore falsifiable: the
differential validator (:mod:`repro.clients.validate`) replays the
interpreter's observed accesses against them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.locations import MemoryLocation
from ..core.queries import extend_for_access
from ..engine import keys
from ..interp.trace import access_width, memory_access_table
from ..ir.function import Function
from ..ir.instructions import AllocaInst, Instruction, MallocInst, StoreInst
from ..ir.module import Module
from ..ir.values import GlobalVariable, Value
from ..symbolic.interval import SymbolicInterval

__all__ = ["BoundsCheckAnalysis", "SAFE", "MAYBE_OOB", "DEFINITELY_OOB"]

SAFE = "safe"
MAYBE_OOB = "maybe-oob"
DEFINITELY_OOB = "definitely-oob"


class BoundsCheckAnalysis:
    """The array out-of-bounds client (Section 1's first motivating client)."""

    name = "check-bounds"

    def __init__(self, module: Module, manager=None):
        self.module = module
        self.manager = manager
        if manager is not None:
            self.rbaa = manager.get(keys.RBAA)
            self.basic = manager.get(keys.BASIC)
            self.ranges = manager.get(keys.RANGES)
        else:
            from ..aliases.basic import BasicAliasAnalysis
            from ..core.rbaa import RBAAAliasAnalysis
            self.rbaa = RBAAAliasAnalysis(module)
            self.basic = BasicAliasAnalysis(module)
            self.ranges = self.rbaa.ranges
        self._reports: Dict[Function, Dict] = {}
        self._extents: Dict[Value, Optional[SymbolicInterval]] = {}

    # -- incremental invalidation (manager edit hook) -----------------------
    def refresh_function(self, old_function: Function,
                         new_function: Function) -> None:
        """Drop the edited function's report; inputs were refreshed first
        (dependencies-first ordering), so re-requesting them is a hit."""
        self._reports.pop(old_function, None)
        self._extents.clear()
        if self.manager is not None:
            self.rbaa = self.manager.get(keys.RBAA)
            self.basic = self.manager.get(keys.BASIC)
            self.ranges = self.manager.get(keys.RANGES)

    # -- extents ------------------------------------------------------------
    def extent_interval(self, site: Value,
                        at_function: Optional[Function] = None
                        ) -> Optional[SymbolicInterval]:
        """The symbolic byte size of an allocation site, or ``None``.

        Symbolic sizes mention kernel symbols whose valuation is fixed per
        activation, so they are only comparable against offset intervals
        computed in the *same* function; cross-function uses are restricted
        to constant extents.
        """
        extent = self._site_extent(site)
        if extent is None:
            return None
        if extent.is_constant:
            return extent
        site_function = getattr(site, "function", None)
        if at_function is not None and site_function is not at_function:
            return None
        return extent

    def _site_extent(self, site: Value) -> Optional[SymbolicInterval]:
        if site in self._extents:
            return self._extents[site]
        extent: Optional[SymbolicInterval] = None
        if isinstance(site, GlobalVariable):
            extent = SymbolicInterval.point(site.value_type.size_in_bytes())
        elif isinstance(site, AllocaInst):
            fixed = site.allocation_size_bytes()
            if fixed is not None:
                extent = SymbolicInterval.point(fixed)
            else:
                element = site.allocated_type.size_in_bytes()
                count = self.ranges.range_of(site.count)
                if not count.is_empty and not count.is_top:
                    extent = count.scale(element)
        elif isinstance(site, MallocInst):
            size = self.ranges.range_of(site.size)
            if not size.is_empty and not size.is_top:
                extent = size
        self._extents[site] = extent
        return extent

    # -- classification ------------------------------------------------------
    @staticmethod
    def _verdict_against_extent(footprint: SymbolicInterval,
                                extent: SymbolicInterval) -> str:
        """Compare one access footprint against one object extent.

        ``safe`` needs the footprint inside ``[0, size - 1]`` for *every*
        admissible size, so it is judged against the extent's lower bound;
        ``definitely-oob`` needs the footprint outside the *largest*
        admissible object, so it is judged against the upper bound.
        """
        if footprint.is_empty:
            return MAYBE_OOB
        smallest = SymbolicInterval.from_bounds(0, extent.lower - 1)
        if smallest.contains_interval(footprint):
            return SAFE
        largest = SymbolicInterval.from_bounds(0, extent.upper - 1)
        if footprint.definitely_disjoint(largest):
            return DEFINITELY_OOB
        return MAYBE_OOB

    def _points_to_verdict(self, pointer: Value, width: int,
                           function: Function) -> str:
        state = self.rbaa.global_state(pointer)
        if state.is_top or state.is_bottom:
            return MAYBE_OOB
        verdicts: List[str] = []
        for location, interval in state.items():
            verdicts.append(self._location_verdict(location, interval,
                                                   width, function))
        if verdicts and all(v == SAFE for v in verdicts):
            return SAFE
        if verdicts and all(v == DEFINITELY_OOB for v in verdicts):
            return DEFINITELY_OOB
        return MAYBE_OOB

    def _location_verdict(self, location: MemoryLocation,
                          interval: SymbolicInterval, width: int,
                          function: Function) -> str:
        if not location.kind.is_concrete_object() or location.site is None:
            return MAYBE_OOB
        extent = self.extent_interval(location.site, at_function=function)
        if extent is None:
            return MAYBE_OOB
        footprint = extend_for_access(interval, width)
        return self._verdict_against_extent(footprint, extent)

    def _decompose_verdict(self, pointer: Value, width: int,
                           function: Function) -> str:
        base, offset = self.basic.decompose(pointer)
        if offset is None:
            return MAYBE_OOB
        if not isinstance(base, (GlobalVariable, AllocaInst, MallocInst)):
            return MAYBE_OOB
        extent = self.extent_interval(base, at_function=function)
        if extent is None:
            return MAYBE_OOB
        footprint = SymbolicInterval.from_bounds(offset, offset + width - 1)
        return self._verdict_against_extent(footprint, extent)

    def classify_access(self, function: Function, index: int,
                        inst: Instruction) -> Tuple[str, str]:
        """Verdict for one load/store: ``(classification, reason)``.

        Override point for the mutant fixtures; both paths are sound, so a
        definite answer from either wins over the other's ``maybe-oob``.
        """
        width = access_width(inst)
        via_points_to = self._points_to_verdict(inst.pointer, width, function)
        if via_points_to != MAYBE_OOB:
            return via_points_to, "points-to"
        via_decompose = self._decompose_verdict(inst.pointer, width, function)
        if via_decompose != MAYBE_OOB:
            return via_decompose, "decompose"
        return MAYBE_OOB, "unproven"

    # -- reports -------------------------------------------------------------
    def function_report(self, function: Function) -> Dict:
        """The per-access verdict table of one function (cached)."""
        cached = self._reports.get(function)
        if cached is not None:
            return cached
        accesses = []
        counts = {"safe": 0, "maybe_oob": 0, "definitely_oob": 0}
        for index, inst in enumerate(memory_access_table(function)):
            classification, reason = self.classify_access(function, index, inst)
            counts[classification.replace("-", "_")] += 1
            accesses.append({
                "index": index,
                "opcode": "store" if isinstance(inst, StoreInst) else "load",
                "pointer": inst.pointer.short_name(),
                "width": access_width(inst),
                "classification": classification,
                "reason": reason,
            })
        report = {"function": function.name,
                  "accesses": accesses, "summary": counts}
        self._reports[function] = report
        return report

    def module_report(self, function: Optional[str] = None) -> Dict:
        """Deterministic whole-module (or one-function) verdict report."""
        names = sorted(f.name for f in self.module.defined_functions()
                       if function is None or f.name == function)
        functions = [self.function_report(self.module.get_function(name))
                     for name in names]
        summary = {"safe": 0, "maybe_oob": 0, "definitely_oob": 0, "accesses": 0}
        for report in functions:
            for key, count in report["summary"].items():
                summary[key] += count
            summary["accesses"] += len(report["accesses"])
        return {"functions": functions, "summary": summary}
