"""Client static analyses built on the reproduced RBAA infrastructure.

The paper motivates symbolic range analysis of pointers by its *clients*:
array bounds checking and disambiguating the memory accesses of loops.
This package holds those two whole-program client passes:

* :mod:`repro.clients.bounds` — classifies every load/store ``safe`` /
  ``maybe-oob`` / ``definitely-oob`` by comparing its symbolic offset
  interval + access size against the extents of the pointer's underlying
  objects;
* :mod:`repro.clients.parallelize` — reports natural loops whose
  cross-iteration memory accesses are provably disjoint;
* :mod:`repro.clients.validate` — the differential validator replaying
  interpreter-observed accesses against both passes' verdicts.

Both passes register behind typed analysis keys
(:data:`repro.engine.keys.BOUNDS`, :data:`repro.engine.keys.PARALLEL`),
participate in function-granular incremental invalidation, and surface
as the ``check_bounds`` / ``parallel_loops`` service ops.
"""

from .bounds import BoundsCheckAnalysis, SAFE, MAYBE_OOB, DEFINITELY_OOB
from .parallelize import LoopParallelismAnalysis
from .validate import ClientViolation, validate_bounds, validate_loops

__all__ = [
    "BoundsCheckAnalysis",
    "LoopParallelismAnalysis",
    "ClientViolation",
    "validate_bounds",
    "validate_loops",
    "SAFE",
    "MAYBE_OOB",
    "DEFINITELY_OOB",
]
