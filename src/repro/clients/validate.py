"""Differential validation of the client analyses against executions.

Both client verdicts are universally quantified claims, so both are
falsifiable against the interpreter's trace:

* a ``safe`` bounds verdict says *no* execution of that load/store leaves
  its object's extent — one observed out-of-extent access refutes it
  (``definitely-oob`` is refuted symmetrically by one in-extent access);
* a ``parallel`` loop verdict says *no* two different iterations of one
  loop execution touch overlapping bytes with a write involved — the
  validator segments each frame's block trace into loop executions and
  iterations and sweeps the access events for exactly such a pair.

Every violation carries a replayable ``(program, seed, access)`` triple.
The sweep is byte-granular: per ``(execution, object, byte)`` it tracks
the min/max iteration touching the byte plus a store flag — a conflict
exists iff a store touched the byte and more than one iteration did.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.loops import LoopInfo
from ..interp.trace import ExecutionTrace, memory_access_table
from ..ir.module import Module

__all__ = ["ClientViolation", "validate_bounds", "validate_loops"]

from .bounds import DEFINITELY_OOB, SAFE

#: Per claimed loop and frame, cap on (event × width) bytes swept before
#: the frame is skipped (and counted as skipped, never silently dropped).
MAX_SWEEP_BYTES = 1 << 20


@dataclass
class ClientViolation:
    """One falsified client verdict, with everything needed to replay it."""

    kind: str                 # "oob" | "parallel"
    program: str
    function: str
    query: str
    detail: str
    replay: Dict[str, Any] = field(default_factory=dict)


def _verdict_index(report: Dict) -> Dict[Tuple[str, int], str]:
    verdicts: Dict[Tuple[str, int], str] = {}
    for function_report in report["functions"]:
        name = function_report["function"]
        for access in function_report["accesses"]:
            verdicts[(name, access["index"])] = access["classification"]
    return verdicts


def validate_bounds(program_name: str, trace: ExecutionTrace, report: Dict,
                    replay: Dict[str, Any]) -> Tuple[int, List[ClientViolation]]:
    """Replay observed accesses against the detector's verdicts.

    Returns ``(events_checked, violations)``.  At most one violation is
    emitted per (function, access, direction) — one refutation is enough.
    """
    verdicts = _verdict_index(report)
    violations: List[ClientViolation] = []
    reported: set = set()
    checked = 0
    for event in trace.accesses:
        key = (event.function, event.access_index)
        classification = verdicts.get(key)
        if classification is None:
            continue
        checked += 1
        broken = None
        if not event.in_extent and classification == SAFE:
            broken = ("observed out-of-extent access classified safe", "safe")
        elif event.in_extent and classification == DEFINITELY_OOB:
            broken = ("observed in-extent access classified definitely-oob",
                      "definitely-oob")
        if broken is None or (key, broken[1]) in reported:
            continue
        reported.add((key, broken[1]))
        violations.append(ClientViolation(
            kind="oob",
            program=program_name,
            function=event.function,
            query=f"access#{event.access_index}",
            detail=(f"{broken[0]}: {event.opcode} of {event.width} byte(s) at "
                    f"offset {event.offset} of object {event.object_label!r} "
                    f"(step {event.step})"),
            replay={**replay, "access": {
                "function": event.function,
                "access_index": event.access_index,
                "step": event.step,
                "offset": event.offset,
                "width": event.width,
                "object": event.object_label,
            }},
        ))
    return checked, violations


def validate_loops(program_name: str, module: Module, trace: ExecutionTrace,
                   report: Dict, replay: Dict[str, Any]
                   ) -> Tuple[int, int, int, List[ClientViolation]]:
    """Replay iteration-segmented accesses against ``parallel`` verdicts.

    Returns ``(loop_frames_checked, loop_frames_skipped, stale_claims,
    violations)``.  ``stale_claims`` counts claimed loop headers missing
    from the recomputed ``LoopInfo`` — a report/module mismatch detected
    once per claim, independent of how many frames the function ran.
    """
    events_by_frame: Dict[int, List] = {}
    for event in trace.accesses:
        if event.access_index >= 0:
            events_by_frame.setdefault(event.frame_id, []).append(event)

    checked = skipped = stale_claims = 0
    violations: List[ClientViolation] = []
    for function_report in report["functions"]:
        claimed = [loop for loop in function_report["loops"]
                   if loop["parallel"]]
        if not claimed:
            continue
        function = module.get_function(function_report["function"])
        if function is None or function.is_declaration():
            continue
        info = LoopInfo.compute(function)
        loops_by_header = {loop.header.label(): loop for loop in info.loops}
        stale_claims += sum(1 for claim in claimed
                            if claim["header"] not in loops_by_header)
        claimed = [claim for claim in claimed
                   if claim["header"] in loops_by_header]
        if not claimed:
            continue
        table = memory_access_table(function)
        for frame in trace.frames_of(function):
            if frame.block_events_truncated:
                skipped += 1
                continue
            events = events_by_frame.get(frame.frame_id, [])
            for claim in claimed:
                loop = loops_by_header[claim["header"]]
                members = {block.label() for block in loop.blocks}
                loop_indices = {
                    index for index, inst in enumerate(table)
                    if inst.parent is not None and inst.parent in loop.blocks}
                loop_events = [event for event in events
                               if event.access_index in loop_indices]
                if not loop_events:
                    checked += 1
                    continue
                if sum(e.width for e in loop_events) > MAX_SWEEP_BYTES:
                    skipped += 1
                    continue
                violation = _sweep_loop_frame(
                    claim["header"], members, frame, loop_events)
                checked += 1
                if violation is not None:
                    overlap_detail, access_detail = violation
                    violations.append(ClientViolation(
                        kind="parallel",
                        program=program_name,
                        function=function.name,
                        query=f"loop@{claim['header']}",
                        detail=("loop reported parallelizable but iterations "
                                f"overlap: {overlap_detail}"),
                        replay={**replay, "access": access_detail},
                    ))
    return checked, skipped, stale_claims, violations


def _sweep_loop_frame(header: str, members: set, frame, loop_events
                      ) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Find one cross-iteration overlapping pair (≥1 store) in one frame.

    Segments the frame's block trace: entering the header from outside the
    loop starts a new *execution* (iterations of different executions are
    never compared — parallelizing the loop keeps executions ordered);
    entering it from a loop block starts the next *iteration*.
    """
    boundary_steps: List[int] = []
    boundary_marks: List[Tuple[int, int]] = []  # (execution, iteration)
    execution = -1
    iteration = 0
    previous: Optional[str] = None
    for step, label in frame.block_events:
        if label == header:
            if previous is not None and previous in members:
                iteration += 1
            else:
                execution += 1
                iteration = 0
            boundary_steps.append(step)
            boundary_marks.append((execution, iteration))
        previous = label

    # (object uid, byte) -> [min iteration, max iteration, stored, event]
    per_execution: Dict[int, Dict[Tuple[int, int], List]] = {}
    for event in loop_events:
        slot = bisect_left(boundary_steps, event.step) - 1
        if slot < 0:
            continue  # pre-header access attributed to no iteration
        execution, iteration = boundary_marks[slot]
        bytes_seen = per_execution.setdefault(execution, {})
        for byte in range(event.offset, event.offset + event.width):
            cell = bytes_seen.get((event.object_uid, byte))
            if cell is None:
                bytes_seen[(event.object_uid, byte)] = \
                    [iteration, iteration, event.opcode == "store", event]
                continue
            cell[0] = min(cell[0], iteration)
            cell[1] = max(cell[1], iteration)
            cell[2] = cell[2] or event.opcode == "store"
            if cell[2] and cell[0] != cell[1]:
                first = cell[3]
                return (
                    f"object {event.object_label!r} byte {byte} touched in "
                    f"iterations {cell[0]} and {cell[1]} of execution "
                    f"{execution} (store involved)",
                    {
                        "frame_id": frame.frame_id,
                        "header": header,
                        "object": event.object_label,
                        "byte": byte,
                        "iterations": [cell[0], cell[1]],
                        "steps": [first.step, event.step],
                        "access_indices": [first.access_index,
                                           event.access_index],
                    },
                )
    return None
