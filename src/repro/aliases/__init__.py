"""Alias analyses: the shared interface, the baselines and their combination.

The paper's own analysis lives in :mod:`repro.core.rbaa`; it implements the
same :class:`~repro.aliases.base.AliasAnalysis` interface defined here so
the evaluation harness can compare and chain all of them uniformly.
"""

from .andersen import AndersenAliasAnalysis
from .base import AliasAnalysis
from .basic import BasicAliasAnalysis
from .combined import CombinedAliasAnalysis
from .results import AliasResult, MemoryAccess
from .scev_aa import SCEVAliasAnalysis
from .steensgaard import SteensgaardAliasAnalysis

__all__ = [
    "AliasAnalysis",
    "AliasResult",
    "MemoryAccess",
    "BasicAliasAnalysis",
    "SCEVAliasAnalysis",
    "AndersenAliasAnalysis",
    "SteensgaardAliasAnalysis",
    "CombinedAliasAnalysis",
]
