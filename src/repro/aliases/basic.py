"""Re-implementation of LLVM's ``basicaa`` heuristics (the "basic" baseline).

Section 4 of the paper lists the heuristics the stateless basic alias
analysis applies; this module implements that list on our IR:

* distinct globals, stack allocations and heap allocations never alias;
* identified objects never alias the null pointer;
* different fields of a structure do not alias, and array indexing with
  statically different subscripts does not alias (both reduce to *constant
  offsets from the same base object that cannot overlap*);
* many standard C library functions do not access (or only read) memory —
  exposed through :meth:`BasicAliasAnalysis.callee_is_readonly`;
* function calls cannot reference stack allocations that never escape.

The analysis is stateless and purely local: it walks pointer definitions
back to their underlying objects, accumulating constant offsets, and answers
from that decomposition alone — no ranges, no loop reasoning.  That is
precisely why it cannot disambiguate the symbolic-offset idioms the paper
targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    SelectInst,
    SigmaInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import GlobalVariable, NullPointer, Value
from .base import AliasAnalysis
from .results import AliasResult, MemoryAccess, NoAliasClaim

__all__ = ["BasicAliasAnalysis", "UnderlyingObject"]

#: Standard C functions that never write memory visible to the caller.
_READONLY_FUNCTIONS = frozenset({
    "strlen", "strcmp", "strncmp", "atoi", "atof", "abs", "labs",
    "isdigit", "isalpha", "isspace", "toupper", "tolower",
})

#: Standard C functions that do not access program memory at all.
_NO_MEMORY_FUNCTIONS = frozenset({"abs", "labs", "rand", "exit", "getchar"})

#: Decomposition walk limit (defensive, mirrors LLVM's search depth caps).
_MAX_WALK = 64

#: Shared descriptor for invocation-scoped claims (NoAliasClaim is frozen,
#: so one instance serves every query on the benchmark-timed path).
_INVOCATION_CLAIM = NoAliasClaim()


@dataclass(frozen=True)
class UnderlyingObject:
    """The result of walking a pointer back to the objects it is based on."""

    #: Identified objects (allocation instructions or globals) when all paths
    #: reach one; empty when some path reaches an unknown pointer.
    objects: FrozenSet[Value]
    #: True when every reachable base is an identified object.
    all_identified: bool
    #: True when one of the reachable bases is the null pointer.
    includes_null: bool


class BasicAliasAnalysis(AliasAnalysis):
    """Stateless, heuristic alias analysis in the spirit of LLVM ``basicaa``."""

    name = "basic"

    def __init__(self, module: Module):
        super().__init__(module)
        self._escape_cache: dict = {}
        self._claim_cache: dict = {}
        #: pointer value -> memoized decomposition results.  Both walks are
        #: pure functions of the (immutable-between-edits) IR, and the
        #: quadratic pair enumeration revisits every pointer O(pointers)
        #: times, so the memo turns repeated walks into dict probes.
        self._object_cache: dict = {}
        self._decompose_cache: dict = {}

    def refresh_function(self, old_function, new_function) -> None:
        """Function-granular incremental refresh (manager edit hook).

        The analysis is stateless apart from its caches: escape verdicts for
        the retired body's allocas are dropped, and the claim/decomposition
        caches — keyed by pointer identities whose ids may be recycled — are
        cleared."""
        stale = set(old_function.instructions())
        for value in [value for value in self._escape_cache if value in stale]:
            del self._escape_cache[value]
        self._claim_cache.clear()
        self._object_cache.clear()
        self._decompose_cache.clear()

    # -- underlying-object decomposition --------------------------------------
    @staticmethod
    def _is_identified_object(value: Value) -> bool:
        return isinstance(value, (MallocInst, AllocaInst, GlobalVariable))

    def underlying_objects(self, pointer: Value) -> UnderlyingObject:
        """All objects ``pointer`` may be based on (through casts, φs, selects, σs).

        Memoized per pointer: the walk is a pure function of the IR, which
        only changes through ``refresh_function`` (which clears the memo).
        """
        cached = self._object_cache.get(pointer)
        if cached is None:
            cached = self._underlying_objects_uncached(pointer)
            self._object_cache[pointer] = cached
        return cached

    def _underlying_objects_uncached(self, pointer: Value) -> UnderlyingObject:
        objects: Set[Value] = set()
        includes_null = False
        all_identified = True
        worklist: List[Value] = [pointer]
        visited: Set[int] = set()
        steps = 0
        while worklist and steps < _MAX_WALK:
            steps += 1
            current = worklist.pop()
            if id(current) in visited:
                continue
            visited.add(id(current))
            if isinstance(current, PtrAddInst):
                worklist.append(current.base)
            elif isinstance(current, CastInst) and current.kind == "bitcast":
                worklist.append(current.value)
            elif isinstance(current, SigmaInst):
                worklist.append(current.source)
            elif isinstance(current, PhiInst):
                worklist.extend(value for value, _ in current.incoming())
            elif isinstance(current, SelectInst):
                worklist.extend((current.true_value, current.false_value))
            elif isinstance(current, NullPointer):
                includes_null = True
            elif self._is_identified_object(current):
                objects.add(current)
            else:
                # Arguments, loads, call results, int-to-pointer casts…
                objects.add(current)
                all_identified = False
        if worklist:
            all_identified = False
        return UnderlyingObject(frozenset(objects), all_identified, includes_null)

    def decompose(self, pointer: Value) -> Tuple[Value, Optional[int]]:
        """Strip constant-offset arithmetic: ``(base, constant byte offset)``.

        The offset is ``None`` as soon as a variable index is involved.
        Memoized per pointer (see :meth:`underlying_objects`).
        """
        cached = self._decompose_cache.get(pointer)
        if cached is not None:
            return cached
        result = self._decompose_uncached(pointer)
        self._decompose_cache[pointer] = result
        return result

    def _decompose_uncached(self, pointer: Value) -> Tuple[Value, Optional[int]]:
        offset: Optional[int] = 0
        current = pointer
        for _ in range(_MAX_WALK):
            if isinstance(current, PtrAddInst):
                constant = current.constant_byte_offset()
                if constant is None:
                    offset = None
                elif offset is not None:
                    offset += constant
                current = current.base
                continue
            if isinstance(current, CastInst) and current.kind == "bitcast":
                current = current.value
                continue
            if isinstance(current, SigmaInst):
                current = current.source
                continue
            break
        return current, offset

    # -- escape analysis ----------------------------------------------------------
    def alloca_escapes(self, alloca: Value) -> bool:
        """True when the address of a stack slot may escape its function."""
        cached = self._escape_cache.get(alloca)
        if cached is not None:
            return cached
        escapes = False
        worklist: List[Value] = [alloca]
        visited: Set[int] = set()
        steps = 0
        while worklist and steps < 4 * _MAX_WALK:
            steps += 1
            current = worklist.pop()
            if id(current) in visited:
                continue
            visited.add(id(current))
            for use in current.uses:
                user = use.user
                if isinstance(user, (PtrAddInst, CastInst, SigmaInst, PhiInst, SelectInst)):
                    worklist.append(user)
                elif isinstance(user, LoadInst):
                    continue
                elif isinstance(user, StoreInst):
                    if user.value is current:
                        escapes = True  # the address itself is written to memory
                elif isinstance(user, CallInst):
                    escapes = True
                else:
                    escapes = True
            if escapes:
                break
        self._escape_cache[alloca] = escapes
        return escapes

    # -- library knowledge -----------------------------------------------------------
    @staticmethod
    def callee_is_readonly(name: str) -> bool:
        """True for standard functions that never write caller-visible memory."""
        return name in _READONLY_FUNCTIONS or name in _NO_MEMORY_FUNCTIONS

    @staticmethod
    def callee_accesses_no_memory(name: str) -> bool:
        """True for standard functions that access no program memory at all."""
        return name in _NO_MEMORY_FUNCTIONS

    # -- the query -----------------------------------------------------------------------
    def classify(self, a: MemoryAccess, b: MemoryAccess
                 ) -> Tuple[AliasResult, NoAliasClaim]:
        """One alias query, plus the validity scope of a no-alias verdict.

        Object-disambiguation rules make invocation-set claims (the regions
        the two pointers ever reference within one activation are disjoint);
        the constant-offset rule is relative to one dynamic instance of the
        shared base, so its claim carries ``scope="same-base"``.
        """
        invocation = _INVOCATION_CLAIM
        pointer_a, pointer_b = a.pointer, b.pointer
        if pointer_a is pointer_b:
            return AliasResult.MUST_ALIAS, invocation

        # Null never aliases identified objects.
        objects_a = self.underlying_objects(pointer_a)
        objects_b = self.underlying_objects(pointer_b)
        if isinstance(pointer_a, NullPointer) and objects_b.all_identified:
            return AliasResult.NO_ALIAS, invocation
        if isinstance(pointer_b, NullPointer) and objects_a.all_identified:
            return AliasResult.NO_ALIAS, invocation

        # Distinct identified objects never alias.
        if objects_a.all_identified and objects_b.all_identified:
            if not (objects_a.objects & objects_b.objects):
                return AliasResult.NO_ALIAS, invocation

        # A non-escaping stack allocation cannot be reached through a pointer
        # that is not based on it (function arguments, loads, call results).
        for mine, other in ((objects_a, objects_b), (objects_b, objects_a)):
            if mine.all_identified and len(mine.objects) >= 1 \
                    and all(isinstance(obj, AllocaInst) for obj in mine.objects) \
                    and all(not self.alloca_escapes(obj) for obj in mine.objects):
                if not other.all_identified and not (mine.objects & other.objects):
                    other_has_identified_overlap = any(
                        self._is_identified_object(obj) and obj in mine.objects
                        for obj in other.objects)
                    if not other_has_identified_overlap:
                        return AliasResult.NO_ALIAS, invocation

        # Same base object with statically different constant offsets: struct
        # fields and constant array subscripts.
        base_a, offset_a = self.decompose(pointer_a)
        base_b, offset_b = self.decompose(pointer_b)
        if base_a is base_b and offset_a is not None and offset_b is not None:
            same_base = NoAliasClaim(scope="same-base", anchors=(base_a,))
            if offset_a == offset_b:
                return AliasResult.MUST_ALIAS, same_base
            low, low_size, high = ((offset_a, a.size, offset_b) if offset_a < offset_b
                                   else (offset_b, b.size, offset_a))
            if low_size is None:
                # Unknown extent: the lower access may reach any higher
                # offset, so neither disjointness nor overlap is provable.
                return AliasResult.MAY_ALIAS, invocation
            if low + low_size <= high:
                return AliasResult.NO_ALIAS, same_base
            return AliasResult.PARTIAL_ALIAS, same_base

        return AliasResult.MAY_ALIAS, invocation

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        return self.classify(a, b)[0]

    def no_alias_context(self, a: MemoryAccess, b: MemoryAccess) -> NoAliasClaim:
        # The oracle asks for the context of every no-alias pair right
        # after query_many computed the verdicts; memoize the (stateless)
        # classification so the decomposition walk is not repeated.
        from ..core.queries import pair_key

        key = pair_key(a, b)
        claim = self._claim_cache.get(key)
        if claim is None:
            claim = self.classify(a, b)[1]
            self._claim_cache[key] = claim
        return claim
