"""Andersen-style inclusion-based points-to analysis.

The paper positions its contribution as *complementary* to classic points-to
analyses: "our representation of pointers can be used to enhance the
precision of algorithms such as Steensgaard's or Andersen's" (Section 5).
To support that comparison — and the ablation benchmarks — this module
implements a field-insensitive, flow-insensitive, context-insensitive
inclusion-based analysis:

* every allocation site, global, pointer parameter and external pointer is
  an abstract object;
* constraints are generated per instruction (``p = &x``, ``p = q``,
  ``p = *q``, ``*p = q``) and solved with a worklist until the points-to
  sets reach a fixed point;
* two pointers may alias iff their points-to sets intersect (or either set
  contains the *unknown* object).

Unlike the range-based analysis, offsets are ignored entirely: ``p`` and
``p + 1`` always share their points-to set, which is exactly the imprecision
the paper's approach removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    FreeInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable, NullPointer, Value
from .base import AliasAnalysis
from .results import AliasResult, MemoryAccess

__all__ = ["AndersenAliasAnalysis"]

#: The distinguished abstract object standing for everything the analysis
#: cannot see (externally allocated memory, unknown call results…).
_UNKNOWN_OBJECT = "<unknown>"


class AndersenAliasAnalysis(AliasAnalysis):
    """Inclusion-based (subset) points-to analysis."""

    name = "andersen"

    def __init__(self, module: Module):
        super().__init__(module)
        # points_to maps pointer values to sets of abstract objects, where an
        # abstract object is an allocation Value or the _UNKNOWN_OBJECT tag.
        self.points_to: Dict[Value, Set[object]] = {}
        # copy edges p ⊇ q (assignments); loads/stores add edges lazily.
        self._copy_edges: Dict[Value, Set[Value]] = {}
        # object -> summary "memory node" points-to set (field-insensitive heap).
        self._memory_of: Dict[object, Set[object]] = {}
        self._loads: List[Tuple[LoadInst, Value]] = []
        self._stores: List[Tuple[Value, Value]] = []
        self._solve()

    # -- constraint helpers -----------------------------------------------------
    def _pts(self, value: Value) -> Set[object]:
        return self.points_to.setdefault(value, set())

    def _add_object(self, pointer: Value, obj: object) -> bool:
        pts = self._pts(pointer)
        if obj in pts:
            return False
        pts.add(obj)
        return True

    def _add_copy(self, destination: Value, source: Value) -> None:
        self._copy_edges.setdefault(source, set()).add(destination)

    # -- constraint generation ------------------------------------------------------
    def _generate(self) -> None:
        for variable in self.module.globals:
            self._add_object(variable, variable)
        for function in self.module.defined_functions():
            for argument in function.args:
                if argument.type.is_pointer():
                    self._seed_argument(function, argument)
            for inst in function.instructions():
                self._generate_for(inst)

    def _seed_argument(self, function: Function, argument: Argument) -> None:
        internal_callers = False
        for caller in self.module.defined_functions():
            for inst in caller.instructions():
                if isinstance(inst, CallInst) and inst.callee_name() == function.name \
                        and argument.index < len(inst.args):
                    self._add_copy(argument, inst.args[argument.index])
                    internal_callers = True
        if function.name == "main" or not internal_callers:
            self._add_object(argument, _UNKNOWN_OBJECT)

    def _generate_for(self, inst: Instruction) -> None:
        if isinstance(inst, (MallocInst, AllocaInst)):
            self._add_object(inst, inst)
        elif isinstance(inst, PtrAddInst):
            self._add_copy(inst, inst.base)
        elif isinstance(inst, CastInst) and inst.type.is_pointer():
            if inst.kind == "bitcast":
                self._add_copy(inst, inst.value)
            else:
                self._add_object(inst, _UNKNOWN_OBJECT)
        elif isinstance(inst, SigmaInst) and inst.type.is_pointer():
            self._add_copy(inst, inst.source)
        elif isinstance(inst, PhiInst) and inst.type.is_pointer():
            for value, _ in inst.incoming():
                self._add_copy(inst, value)
        elif isinstance(inst, SelectInst) and inst.type.is_pointer():
            self._add_copy(inst, inst.true_value)
            self._add_copy(inst, inst.false_value)
        elif isinstance(inst, FreeInst):
            self._add_copy(inst, inst.pointer)
        elif isinstance(inst, LoadInst) and inst.type.is_pointer():
            self._loads.append((inst, inst.pointer))
        elif isinstance(inst, StoreInst) and inst.value.type.is_pointer():
            self._stores.append((inst.value, inst.pointer))
        elif isinstance(inst, CallInst) and inst.type.is_pointer():
            callee = self.module.get_function(inst.callee_name())
            if callee is not None and not callee.is_declaration():
                for block in callee.blocks:
                    terminator = block.terminator
                    if isinstance(terminator, ReturnInst) and terminator.value is not None \
                            and terminator.value.type.is_pointer():
                        self._add_copy(inst, terminator.value)
            else:
                self._add_object(inst, _UNKNOWN_OBJECT)

    # -- solving ----------------------------------------------------------------------
    def _solve(self) -> None:
        self._generate()
        changed = True
        iterations = 0
        # The constraint graph is small relative to the module; a simple
        # round-robin fixed point is fast enough and easy to reason about.
        while changed and iterations < 100:
            iterations += 1
            changed = False
            # Copy edges: pts(dst) ⊇ pts(src).
            for source, destinations in self._copy_edges.items():
                source_pts = self._pts(source) if not isinstance(source, (GlobalVariable,)) \
                    else self._pts(source)
                if isinstance(source, NullPointer):
                    continue
                for destination in destinations:
                    before = len(self._pts(destination))
                    self._pts(destination).update(source_pts)
                    if len(self._pts(destination)) != before:
                        changed = True
            # Stores: for every object q may point to, mem(object) ⊇ pts(value).
            for value, pointer in self._stores:
                value_pts = self._pts(value)
                for obj in list(self._pts(pointer)):
                    memory = self._memory_of.setdefault(obj, set())
                    before = len(memory)
                    memory.update(value_pts)
                    if len(memory) != before:
                        changed = True
            # Loads: pts(load) ⊇ mem(object) for every pointee object.
            for load, pointer in self._loads:
                load_pts = self._pts(load)
                before = len(load_pts)
                for obj in list(self._pts(pointer)):
                    load_pts.update(self._memory_of.get(obj, {_UNKNOWN_OBJECT}))
                if not self._pts(pointer):
                    load_pts.add(_UNKNOWN_OBJECT)
                if len(load_pts) != before:
                    changed = True

    # -- queries -------------------------------------------------------------------------
    def points_to_set(self, pointer: Value) -> Set[object]:
        """The abstract objects ``pointer`` may reference."""
        if isinstance(pointer, GlobalVariable):
            return {pointer}
        if isinstance(pointer, NullPointer):
            return set()
        pts = self.points_to.get(pointer)
        if pts is None or not pts:
            return {_UNKNOWN_OBJECT}
        return pts

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        if a.pointer is b.pointer:
            return AliasResult.MUST_ALIAS
        set_a = self.points_to_set(a.pointer)
        set_b = self.points_to_set(b.pointer)
        if not set_a or not set_b:
            return AliasResult.NO_ALIAS
        if _UNKNOWN_OBJECT in set_a or _UNKNOWN_OBJECT in set_b:
            return AliasResult.MAY_ALIAS
        if set_a & set_b:
            return AliasResult.MAY_ALIAS
        return AliasResult.NO_ALIAS
