"""Andersen-style inclusion-based points-to analysis.

The paper positions its contribution as *complementary* to classic points-to
analyses: "our representation of pointers can be used to enhance the
precision of algorithms such as Steensgaard's or Andersen's" (Section 5).
To support that comparison — and the ablation benchmarks — this module
implements a field-insensitive, flow-insensitive, context-insensitive
inclusion-based analysis:

* every allocation site, global, pointer parameter and external pointer is
  an abstract object;
* constraints are generated per instruction (``p = &x``, ``p = q``,
  ``p = *q``, ``*p = q``) and solved on the shared sparse engine
  (:mod:`repro.engine.solver`): points-to sets and per-object memory
  summaries are solver nodes, copy edges are dependence edges, and the
  load/store indirections register their dependence edges dynamically as
  the points-to sets grow;
* two pointers may alias iff their points-to sets intersect (or either set
  contains the *unknown* object).

Unlike the range-based analysis, offsets are ignored entirely: ``p`` and
``p + 1`` always share their points-to set, which is exactly the imprecision
the paper's approach removes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..engine.solver import SparseProblem, SparseSolver
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    FreeInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable, NullPointer, Value
from .base import AliasAnalysis
from .results import AliasResult, MemoryAccess

__all__ = ["AndersenAliasAnalysis"]

#: The distinguished abstract object standing for everything the analysis
#: cannot see (externally allocated memory, unknown call results…).
_UNKNOWN_OBJECT = "<unknown>"


class _PointsToProblem(SparseProblem):
    """The inclusion constraint system as a sparse solver problem.

    Two node namespaces: ``("v", value)`` is the points-to set of an SSA
    pointer, ``("m", obj)`` the memory summary of one abstract object.  Copy
    edges are static dependencies; the edges through memory (``p = *q`` and
    ``*p = q``) appear as the pointer operands' sets grow, so the transfer
    functions register them with :meth:`SparseSolver.add_dependency`.
    """

    name = "andersen"

    def __init__(self, analysis: "AndersenAliasAnalysis"):
        self._analysis = analysis
        self._solver = None

    def bind(self, solver: SparseSolver) -> None:
        self._solver = solver

    def nodes(self):
        analysis = self._analysis
        return ([("v", value) for value in analysis._pointer_nodes]
                + [("m", obj) for obj in analysis._objects])

    def dependencies(self, node):
        kind, subject = node
        analysis = self._analysis
        if kind == "v":
            deps = [("v", source) for source in analysis._sources.get(subject, ())]
            pointer = analysis._load_pointer.get(subject)
            if pointer is not None:
                deps.append(("v", pointer))
                # Memory reads already known from the current points-to sets.
                # A cold solve sees nothing here (the sets are empty until it
                # runs; the edges appear dynamically instead), but a re-seeded
                # solve must pre-register them so summary growth re-enqueues
                # retained loads.
                for obj in analysis.points_to.get(pointer, ()):
                    deps.append(("m", obj))
            return deps
        # Memory summaries read through stores, whose targets only become
        # known as points-to sets grow; those edges are registered
        # dynamically (see _transfer_value), never declared densely.
        return ()

    def delta_nodes(self, edit):
        """Seed set after a single-function edit.

        :meth:`AndersenAliasAnalysis.refresh_function` prepares the hard
        part — the constraint destinations whose inclusion constraints the
        edit changed, closed over the *previous* dependence graph (the
        ``_dirty`` set) — before asking for the seeds.  Every store pointer
        and memory summary rides along because the contributor registries
        (``_stores_targeting``, ``_memory_of``) are derived state without
        provenance: they are re-derived from one evaluation each rather
        than surgically patched.
        """
        analysis = self._analysis
        seeds = list(analysis._dirty)
        seeds.extend(("v", pointer) for pointer in analysis._stores_by_pointer)
        seeds.extend(("m", obj) for obj in analysis._objects)
        return seeds

    def transfer(self, node):
        kind, subject = node
        if kind == "v":
            return self._transfer_value(subject)
        return self._transfer_memory(subject)

    def _transfer_value(self, value: Value) -> Set[object]:
        analysis = self._analysis
        # Accumulate into the current state: points-to sets only ever grow
        # (conditional contributions such as the unknown-object fallback must
        # never be retracted, or cyclic constraint graphs oscillate).
        result: Set[object] = set(analysis.points_to.get(value, ()))
        result.update(analysis._base.get(value, ()))
        for source in analysis._sources.get(value, ()):
            if isinstance(source, NullPointer):
                continue
            result.update(analysis.points_to.get(source, ()))
        pointer = analysis._load_pointer.get(value)
        if pointer is not None:
            pointer_pts = analysis.points_to.get(pointer, ())
            if not pointer_pts:
                result.add(_UNKNOWN_OBJECT)
            for obj in pointer_pts:
                self._solver.add_dependency(("v", value), ("m", obj))
                memory = analysis._memory_of.get(obj)
                result.update(memory if memory is not None else {_UNKNOWN_OBJECT})
        # This pointer may be a store target: every object it can reach gains
        # the store as a contributor, and the memory summary must re-run when
        # either this pointer's or the stored value's set grows.  Registering
        # here (before the solver writes the changed set and enqueues
        # dependents) keeps the memory side of the graph as sparse as the
        # points-to sets themselves.
        stored_values = analysis._stores_by_pointer.get(value)
        if stored_values:
            for obj in result:
                contributors = analysis._stores_targeting.setdefault(obj, set())
                contributors.update(stored_values)
                self._solver.add_dependency(("m", obj), ("v", value))
                for stored in stored_values:
                    self._solver.add_dependency(("m", obj), ("v", stored))
        return result

    def _transfer_memory(self, obj: object):
        analysis = self._analysis
        existing = analysis._memory_of.get(obj)
        result = None if existing is None else set(existing)
        contributors = analysis._stores_targeting.get(obj)
        if contributors is not None:
            if result is None:
                result = set()
            for stored in contributors:
                result.update(analysis.points_to.get(stored, ()))
        # ``None`` (no store can reach the object) is distinct from the empty
        # set: loads treat untouched memory as the unknown object.
        return result

    def read(self, node):
        kind, subject = node
        if kind == "v":
            return self._analysis.points_to.get(subject, set())
        return self._analysis._memory_of.get(subject)

    def write(self, node, value) -> None:
        kind, subject = node
        if kind == "v":
            self._analysis.points_to[subject] = value
        elif value is not None:
            self._analysis._memory_of[subject] = value


class AndersenAliasAnalysis(AliasAnalysis):
    """Inclusion-based (subset) points-to analysis."""

    name = "andersen"

    def __init__(self, module: Module):
        super().__init__(module)
        # points_to maps pointer values to sets of abstract objects, where an
        # abstract object is an allocation Value or the _UNKNOWN_OBJECT tag.
        self.points_to: Dict[Value, Set[object]] = {}
        # base ("address-of") facts: p ∋ obj constraints from allocations.
        self._base: Dict[Value, Set[object]] = {}
        # copy sources per destination: pts(dst) ⊇ pts(src).
        self._sources: Dict[Value, List[Value]] = {}
        # object -> summary "memory node" points-to set (field-insensitive heap).
        self._memory_of: Dict[object, Set[object]] = {}
        self._load_pointer: Dict[LoadInst, Value] = {}
        # store pointer -> values stored through it; object -> stored values
        # of the stores known to reach it (built dynamically during solving).
        self._stores_by_pointer: Dict[Value, Set[Value]] = {}
        self._stores_targeting: Dict[object, Set[Value]] = {}
        self._pointer_nodes: List[Value] = []
        self._known_nodes: Set[Value] = set()
        self._objects: List[object] = []
        self._object_set: Set[object] = set()
        # Seed closure of the most recent refresh_function call; consumed by
        # _PointsToProblem.delta_nodes.
        self._dirty: Set[tuple] = set()
        self.solver_statistics = None
        self._solve()

    # -- constraint helpers -----------------------------------------------------
    def _node(self, value: Value) -> None:
        if value not in self._known_nodes:
            self._known_nodes.add(value)
            self._pointer_nodes.append(value)

    def _object(self, obj: object) -> None:
        if obj not in self._object_set:
            self._object_set.add(obj)
            self._objects.append(obj)

    def _add_object(self, pointer: Value, obj: object) -> None:
        self._node(pointer)
        self._object(obj)
        self._base.setdefault(pointer, set()).add(obj)

    def _add_copy(self, destination: Value, source: Value) -> None:
        self._node(destination)
        if not isinstance(source, NullPointer):
            self._node(source)
        self._sources.setdefault(destination, []).append(source)

    # -- constraint generation ------------------------------------------------------
    def _generate(self) -> None:
        for variable in self.module.globals:
            self._add_object(variable, variable)
        for function in self.module.defined_functions():
            for argument in function.args:
                if argument.type.is_pointer():
                    self._seed_argument(function, argument)
            for inst in function.instructions():
                self._generate_for(inst)

    def _seed_argument(self, function: Function, argument: Argument) -> None:
        internal_callers = False
        for caller in self.module.defined_functions():
            for inst in caller.instructions():
                if isinstance(inst, CallInst) and inst.callee_name() == function.name \
                        and argument.index < len(inst.args):
                    self._add_copy(argument, inst.args[argument.index])
                    internal_callers = True
        if function.name == "main" or not internal_callers:
            self._add_object(argument, _UNKNOWN_OBJECT)

    def _generate_for(self, inst: Instruction) -> None:
        if isinstance(inst, (MallocInst, AllocaInst)):
            self._add_object(inst, inst)
        elif isinstance(inst, PtrAddInst):
            self._add_copy(inst, inst.base)
        elif isinstance(inst, CastInst) and inst.type.is_pointer():
            if inst.kind == "bitcast":
                self._add_copy(inst, inst.value)
            else:
                self._add_object(inst, _UNKNOWN_OBJECT)
        elif isinstance(inst, SigmaInst) and inst.type.is_pointer():
            self._add_copy(inst, inst.source)
        elif isinstance(inst, PhiInst) and inst.type.is_pointer():
            for value, _ in inst.incoming():
                self._add_copy(inst, value)
        elif isinstance(inst, SelectInst) and inst.type.is_pointer():
            self._add_copy(inst, inst.true_value)
            self._add_copy(inst, inst.false_value)
        elif isinstance(inst, FreeInst):
            self._add_copy(inst, inst.pointer)
        elif isinstance(inst, LoadInst) and inst.type.is_pointer():
            self._node(inst)
            self._node(inst.pointer)
            self._load_pointer[inst] = inst.pointer
        elif isinstance(inst, StoreInst) and inst.value.type.is_pointer():
            self._node(inst.value)
            self._node(inst.pointer)
            self._stores_by_pointer.setdefault(inst.pointer, set()).add(inst.value)
        elif isinstance(inst, CallInst) and inst.type.is_pointer():
            callee = self.module.get_function(inst.callee_name())
            if callee is not None and not callee.is_declaration():
                for block in callee.blocks:
                    terminator = block.terminator
                    if isinstance(terminator, ReturnInst) and terminator.value is not None \
                            and terminator.value.type.is_pointer():
                        self._add_copy(inst, terminator.value)
            else:
                self._add_object(inst, _UNKNOWN_OBJECT)

    # -- solving ----------------------------------------------------------------------
    def _solve(self) -> None:
        self._generate()
        solver = SparseSolver(_PointsToProblem(self))
        self.solver_statistics = solver.solve()

    # -- incremental refresh ------------------------------------------------------------
    def refresh_function(self, old_function: Function, new_function: Function,
                         edit) -> Dict[str, int]:
        """Re-seed the inclusion fixed point after one function was replaced.

        The constraint system is regenerated over the edited module, then the
        retained points-to sets are kept wherever the edit cannot have
        removed a contribution: every destination whose constraints changed
        is reset together with its dependent closure over the *previous*
        dependence graph (copy edges, load indirections through the retained
        sets, store indirections likewise).  Inclusion solving is monotone
        and grow-only, so re-running the solver over that seed set against
        the retained state converges to exactly the cold answer.
        """
        old_values: Set[Value] = set(old_function.args)
        old_values.update(old_function.instructions())
        old_base = self._base
        old_sources = self._sources
        old_load_pointer = self._load_pointer
        old_stores = self._stores_by_pointer

        # Regenerate the constraint system over the edited module; unchanged
        # functions contribute the identical Value objects, so the diff in
        # _dirty_closure is exact.
        self._base = {}
        self._sources = {}
        self._load_pointer = {}
        self._stores_by_pointer = {}
        self._stores_targeting = {}
        self._pointer_nodes = []
        self._known_nodes = set()
        self._objects = []
        self._object_set = set()
        self._generate()

        self._dirty = self._dirty_closure(old_values, old_base, old_sources,
                                          old_load_pointer, old_stores)
        for kind, subject in self._dirty:
            if kind == "v":
                self.points_to.pop(subject, None)
        for value in old_values:
            self.points_to.pop(value, None)
        # Memory summaries and the contributor registry are derived state
        # without provenance; drop both and let the re-seeded store pointers
        # rebuild them (every ("m", obj) node is a seed).
        self._memory_of = {}
        retained = len(self.points_to)

        problem = _PointsToProblem(self)
        seeds = problem.delta_nodes(edit)
        solver = SparseSolver(problem)
        self.solver_statistics.accumulate(solver.resolve_from(problem, seeds))
        return {"reseeded": len(set(seeds)), "retained": retained}

    def _dirty_closure(self, old_values, old_base, old_sources,
                       old_load_pointer, old_stores):
        """Nodes whose retained set may exceed the new least fixed point.

        Starts from every destination whose constraints the edit changed and
        closes over the dependence graph of the *previous* solve — static
        copy/load edges plus the memory indirections the retained points-to
        sets imply.  Anything outside the closure received no contribution
        from a removed constraint, so its retained set is a sound lower
        bound that the monotone re-solve can only confirm.
        """
        def fingerprint(values):
            return sorted(id(value) for value in values)

        dirty: Set[tuple] = {("v", value) for value in old_values}
        for destination in set(old_base) | set(self._base):
            if fingerprint(old_base.get(destination, ())) \
                    != fingerprint(self._base.get(destination, ())):
                dirty.add(("v", destination))
        for destination in set(old_sources) | set(self._sources):
            if fingerprint(old_sources.get(destination, ())) \
                    != fingerprint(self._sources.get(destination, ())):
                dirty.add(("v", destination))
        for destination in set(old_load_pointer) | set(self._load_pointer):
            if old_load_pointer.get(destination) is not self._load_pointer.get(destination):
                dirty.add(("v", destination))
        # A changed store can shrink every summary its pointer reached and,
        # through loads, anything read out of those summaries.
        for pointer in set(old_stores) | set(self._stores_by_pointer):
            if fingerprint(old_stores.get(pointer, ())) \
                    != fingerprint(self._stores_by_pointer.get(pointer, ())):
                for obj in self.points_to.get(pointer, ()):
                    dirty.add(("m", obj))
        dependents: Dict[tuple, List[tuple]] = {}
        for destination, sources in old_sources.items():
            for source in sources:
                dependents.setdefault(("v", source), []).append(("v", destination))
        for destination, pointer in old_load_pointer.items():
            dependents.setdefault(("v", pointer), []).append(("v", destination))
            for obj in self.points_to.get(pointer, ()):
                dependents.setdefault(("m", obj), []).append(("v", destination))
        for pointer, stored_values in old_stores.items():
            for obj in self.points_to.get(pointer, ()):
                edge = ("m", obj)
                dependents.setdefault(("v", pointer), []).append(edge)
                for stored in stored_values:
                    dependents.setdefault(("v", stored), []).append(edge)
        frontier = list(dirty)
        while frontier:
            node = frontier.pop()
            for dependent in dependents.get(node, ()):
                if dependent not in dirty:
                    dirty.add(dependent)
                    frontier.append(dependent)
        return dirty

    # -- queries -------------------------------------------------------------------------
    def points_to_set(self, pointer: Value) -> Set[object]:
        """The abstract objects ``pointer`` may reference."""
        if isinstance(pointer, GlobalVariable):
            return {pointer}
        if isinstance(pointer, NullPointer):
            return set()
        pts = self.points_to.get(pointer)
        if pts is None or not pts:
            return {_UNKNOWN_OBJECT}
        return pts

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        if a.pointer is b.pointer:
            return AliasResult.MUST_ALIAS
        set_a = self.points_to_set(a.pointer)
        set_b = self.points_to_set(b.pointer)
        if not set_a or not set_b:
            return AliasResult.NO_ALIAS
        if _UNKNOWN_OBJECT in set_a or _UNKNOWN_OBJECT in set_b:
            return AliasResult.MAY_ALIAS
        if set_a & set_b:
            return AliasResult.MAY_ALIAS
        return AliasResult.NO_ALIAS
