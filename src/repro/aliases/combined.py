"""Chaining of alias analyses (the ``r + b`` column of Figure 13).

LLVM stacks alias-analysis passes: a query is answered "no alias" as soon as
any pass in the chain proves it.  :class:`CombinedAliasAnalysis` reproduces
that behaviour for arbitrary combinations, which is how the paper reports
the complementarity of its technique with ``basicaa``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.module import Module
from .base import AliasAnalysis
from .results import AliasResult, MemoryAccess

__all__ = ["CombinedAliasAnalysis"]

#: How strong each answer is when merging chained results.
_STRENGTH = {
    AliasResult.NO_ALIAS: 3,
    AliasResult.MUST_ALIAS: 2,
    AliasResult.PARTIAL_ALIAS: 1,
    AliasResult.MAY_ALIAS: 0,
}


class CombinedAliasAnalysis(AliasAnalysis):
    """Answers with the most precise result any chained analysis produces."""

    def __init__(self, module: Module, analyses: Sequence[AliasAnalysis],
                 name: Optional[str] = None):
        super().__init__(module)
        if not analyses:
            raise ValueError("CombinedAliasAnalysis needs at least one analysis")
        self.analyses: List[AliasAnalysis] = list(analyses)
        self.name = name or "+".join(analysis.name for analysis in self.analyses)
        #: Which chained analysis answered each no-alias query (by name).
        self.credit: Dict[str, int] = {analysis.name: 0 for analysis in self.analyses}

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        best = AliasResult.MAY_ALIAS
        for analysis in self.analyses:
            result = analysis.alias(a, b)
            if result is AliasResult.NO_ALIAS:
                self.credit[analysis.name] += 1
                return AliasResult.NO_ALIAS
            if _STRENGTH[result] > _STRENGTH[best]:
                best = result
        return best
