"""Scalar-evolution-based alias analysis (the ``scev`` baseline of Figure 13).

LLVM's ``scev-aa`` disambiguates two pointers when their scalar evolutions
differ by a non-zero compile-time constant at every point of the iteration
space: if ``p = {B + o1, +, s}`` and ``q = {B + o2, +, s}`` over the same
loop, then at any given iteration the distance ``p - q`` is the constant
``o1 - o2``; when that distance is at least the access size, the accesses
never overlap *at the same moment*.

Like the LLVM pass, this analysis is only effective for pointers indexed by
affine induction variables of the same loop — exactly the limitation the
paper points out when motivating the range-based approach.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.values import Value
from ..rangeanalysis.scev import AddRecurrence, ScalarEvolution
from .base import AliasAnalysis
from .results import AliasResult, MemoryAccess

__all__ = ["SCEVAliasAnalysis"]


class SCEVAliasAnalysis(AliasAnalysis):
    """Constant-distance disambiguation over add recurrences."""

    name = "scev"

    def __init__(self, module: Module):
        super().__init__(module)
        self._engines: Dict[Function, ScalarEvolution] = {}
        #: pointer value -> its add recurrence (or None); saves the
        #: engine-resolution walk on the quadratic pair enumeration, which
        #: asks about every pointer O(pointers) times.
        self._evolutions: Dict[Value, Optional[AddRecurrence]] = {}

    def refresh_function(self, old_function, new_function) -> None:
        """Function-granular incremental refresh (manager edit hook):
        scalar-evolution engines are built lazily per function, so the edit
        only needs to retire the old body's engine (and the per-pointer
        memo, whose keys are the retired body's identities)."""
        self._engines.pop(old_function, None)
        self._evolutions.clear()

    def _engine_for(self, value: Value) -> Optional[ScalarEvolution]:
        function: Optional[Function] = None
        if isinstance(value, Instruction):
            function = value.function
        elif getattr(value, "parent", None) is not None and isinstance(value.parent, Function):
            function = value.parent
        if function is None or function.is_declaration():
            return None
        engine = self._engines.get(function)
        if engine is None:
            engine = ScalarEvolution(function)
            self._engines[function] = engine
        return engine

    def evolution_of(self, pointer: Value) -> Optional[AddRecurrence]:
        """The add recurrence of a pointer value, if the engine can see one
        (memoized per pointer across queries)."""
        if pointer in self._evolutions:
            return self._evolutions[pointer]
        engine = self._engine_for(pointer)
        recurrence = None if engine is None else engine.evolution_of(pointer)
        self._evolutions[pointer] = recurrence
        return recurrence

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        if a.pointer is b.pointer:
            return AliasResult.MUST_ALIAS
        recurrence_a = self.evolution_of(a.pointer)
        recurrence_b = self.evolution_of(b.pointer)
        if recurrence_a is None or recurrence_b is None:
            return AliasResult.MAY_ALIAS
        distance = recurrence_a.constant_distance_from(recurrence_b)
        if distance is None:
            return AliasResult.MAY_ALIAS
        if distance == 0:
            return AliasResult.MUST_ALIAS
        size_a = a.size
        size_b = b.size
        # ``a`` is ``distance`` bytes above ``b`` (or below when negative);
        # the accesses are disjoint when the gap covers the access size.  An
        # unknown size (None) may span any gap, so nothing is provable.
        if size_a is None or size_b is None:
            return AliasResult.MAY_ALIAS
        if distance > 0 and distance >= size_b:
            return AliasResult.NO_ALIAS
        if distance < 0 and -distance >= size_a:
            return AliasResult.NO_ALIAS
        return AliasResult.PARTIAL_ALIAS
