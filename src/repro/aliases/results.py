"""Alias query results and query descriptors shared by all analyses."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..ir.values import Value

__all__ = ["AliasResult", "MemoryAccess", "NoAliasClaim"]


class AliasResult(enum.Enum):
    """Outcome of an alias query, ordered from strongest to weakest claim."""

    NO_ALIAS = "no-alias"
    MAY_ALIAS = "may-alias"
    PARTIAL_ALIAS = "partial-alias"
    MUST_ALIAS = "must-alias"

    def is_no_alias(self) -> bool:
        return self is AliasResult.NO_ALIAS

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MemoryAccess:
    """A pointer plus the byte size of the access it performs.

    Alias queries compare two accesses; when the size is unknown (``None``)
    analyses must treat the access as potentially unbounded.
    """

    pointer: Value
    size: Optional[int] = 1

    @classmethod
    def of(cls, pointer: Value, size: Optional[int] = None) -> "MemoryAccess":
        """Build an access, defaulting the size to the pointee size."""
        if size is None:
            pointee = getattr(pointer.type, "pointee", None)
            size = max(1, pointee.size_in_bytes()) if pointee is not None else 1
        return cls(pointer, size)

    @classmethod
    def unknown_extent(cls, pointer: Value) -> "MemoryAccess":
        """An access of *unknown* byte size.

        Analyses must treat the extent as unbounded (``extend_for_access``
        extends the offset interval to ``+inf``); there is deliberately no
        helper that collapses an unknown size to one byte — doing arithmetic
        with 1 in its place once let the disjointness tests prove "no alias"
        for overlapping accesses.
        """
        return cls(pointer, None)


@dataclass(frozen=True)
class NoAliasClaim:
    """The *scope* of one no-alias verdict, for differential validation.

    A no-alias answer is a universally quantified statement, but the
    quantifier's domain differs by disambiguation rule.  The soundness
    oracle (:mod:`repro.evaluation.soundness`) uses this descriptor to
    compare each verdict against exactly the executions it quantifies over:

    * ``"invocation"`` — the sets of concrete regions the two pointers
      reference during one activation of their function are disjoint
      (object-disambiguation rules, RBAA's range tests).
    * ``"same-base"`` — the claim is relative to one dynamic instance of a
      shared base pointer (basic-AA's constant-offset rule): only value
      pairs derived from the same base instance are compared.
    * ``"unchecked"`` — the claim's validity context cannot be
      reconstructed from the trace; the oracle skips (and counts) it.
    """

    scope: str = "invocation"
    #: Values whose per-invocation dynamic instance the claim is relative
    #: to.  For ``"same-base"`` the single shared base; for ``"invocation"``
    #: claims, anchors that must be single-instance in a frame for the
    #: value-set comparison to be licensed (e.g. the load defining a
    #: synthetic LR base).
    anchors: Tuple[Value, ...] = ()
    #: Kernel symbols the claim's symbolic ranges mention; the oracle skips
    #: frames in which any of them was bound to more than one value.
    symbols: FrozenSet[str] = field(default_factory=frozenset)
