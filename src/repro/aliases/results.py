"""Alias query results and query descriptors shared by all analyses."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..ir.values import Value

__all__ = ["AliasResult", "MemoryAccess"]


class AliasResult(enum.Enum):
    """Outcome of an alias query, ordered from strongest to weakest claim."""

    NO_ALIAS = "no-alias"
    MAY_ALIAS = "may-alias"
    PARTIAL_ALIAS = "partial-alias"
    MUST_ALIAS = "must-alias"

    def is_no_alias(self) -> bool:
        return self is AliasResult.NO_ALIAS

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MemoryAccess:
    """A pointer plus the byte size of the access it performs.

    Alias queries compare two accesses; when the size is unknown (``None``)
    analyses must treat the access as potentially unbounded.
    """

    pointer: Value
    size: Optional[int] = 1

    @classmethod
    def of(cls, pointer: Value, size: Optional[int] = None) -> "MemoryAccess":
        """Build an access, defaulting the size to the pointee size."""
        if size is None:
            pointee = getattr(pointer.type, "pointee", None)
            size = max(1, pointee.size_in_bytes()) if pointee is not None else 1
        return cls(pointer, size)

    def bounded_size(self) -> int:
        """Size usable in arithmetic: unknown sizes behave as one byte for
        offset math (the *analysis* must already have handled unknown sizes
        conservatively before relying on this)."""
        return self.size if self.size is not None else 1
