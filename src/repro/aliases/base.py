"""The common interface every alias analysis in the repository implements.

Both the baselines (``basic``, ``scev``, Andersen, Steensgaard) and the
paper's range-based analysis expose the same two entry points so the
evaluation harness can swap and chain them freely, mirroring how LLVM
stacks alias-analysis passes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ..ir.module import Module
from ..ir.values import Value
from .results import AliasResult, MemoryAccess

__all__ = ["AliasAnalysis"]


class AliasAnalysis(ABC):
    """Base class of all alias analyses."""

    #: Short machine-readable identifier used in reports (``basic``, ``scev``…).
    name: str = "abstract"

    def __init__(self, module: Module):
        self.module = module

    # -- main entry points ----------------------------------------------------
    @abstractmethod
    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        """Answer one alias query between two memory accesses."""

    def alias_pointers(self, a: Value, b: Value,
                       size_a: Optional[int] = None,
                       size_b: Optional[int] = None) -> AliasResult:
        """Convenience wrapper taking raw pointer values."""
        return self.alias(MemoryAccess.of(a, size_a), MemoryAccess.of(b, size_b))

    def no_alias(self, a: Value, b: Value) -> bool:
        """True when the analysis proves the two pointers never overlap."""
        return self.alias_pointers(a, b) is AliasResult.NO_ALIAS

    # -- identification ---------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name}) on {self.module.name!r}>"
