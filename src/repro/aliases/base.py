"""The common interface every alias analysis in the repository implements.

Both the baselines (``basic``, ``scev``, Andersen, Steensgaard) and the
paper's range-based analysis expose the same two entry points so the
evaluation harness can swap and chain them freely, mirroring how LLVM
stacks alias-analysis passes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence, Tuple

from ..ir.module import Module
from ..ir.values import Value
from .results import AliasResult, MemoryAccess, NoAliasClaim

__all__ = ["AliasAnalysis"]


class AliasAnalysis(ABC):
    """Base class of all alias analyses."""

    #: Short machine-readable identifier used in reports (``basic``, ``scev``…).
    name: str = "abstract"

    def __init__(self, module: Module):
        self.module = module
        #: The memo of the most recent :meth:`query_many` batch (stats hook).
        self.last_query_memo = None

    # -- main entry points ----------------------------------------------------
    @abstractmethod
    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        """Answer one alias query between two memory accesses."""

    def query_many(self, pairs: Iterable[Tuple[MemoryAccess, MemoryAccess]],
                   memo=None) -> List[AliasResult]:
        """Answer a batch of queries with per-pair memoization.

        Alias queries are symmetric and analyses immutable once built, so a
        repeated ``(pointer, size)`` pair replays the memoized answer instead
        of re-running the tests.  Subclasses that keep per-query statistics
        must override :meth:`on_memoized_query` so their counters see the
        replayed queries too (the harness counts every query, cached or not).

        ``memo`` lets a long-lived caller (the analysis service's resident
        sessions) thread one :class:`~repro.core.queries.QueryPairMemo`
        through many batches so memoized outcomes survive across requests;
        the caller then owns the payload lifetime (``release()`` is *not*
        called).  Without it the memo is batch-scoped as before.
        """
        from ..core.queries import QueryPairMemo, pair_key

        persistent = memo is not None
        if memo is None:
            memo = QueryPairMemo()
        results: List[AliasResult] = []
        for a, b in pairs:
            key = pair_key(a, b)
            cached = memo.lookup(key)
            if cached is not None:
                self.on_memoized_query(a, b, cached)
                results.append(cached)
                continue
            result = self.alias(a, b)
            memo.remember(key, result)
            results.append(result)
        if not persistent:
            # Keep the hit/miss counters, drop the O(pairs) payloads.
            memo.release()
        self.last_query_memo = memo
        return results

    def on_memoized_query(self, a: MemoryAccess, b: MemoryAccess,
                          result: AliasResult) -> None:
        """Hook called instead of :meth:`alias` for a memoized pair."""

    def alias_pointers(self, a: Value, b: Value,
                       size_a: Optional[int] = None,
                       size_b: Optional[int] = None) -> AliasResult:
        """Convenience wrapper taking raw pointer values."""
        return self.alias(MemoryAccess.of(a, size_a), MemoryAccess.of(b, size_b))

    def no_alias(self, a: Value, b: Value) -> bool:
        """True when the analysis proves the two pointers never overlap."""
        return self.alias_pointers(a, b) is AliasResult.NO_ALIAS

    # -- differential-validation hooks ----------------------------------------
    def no_alias_pairs(self, pairs: Sequence[Tuple[MemoryAccess, MemoryAccess]]
                       ) -> List[int]:
        """Indices of ``pairs`` this analysis answers "no alias" (oracle hook)."""
        answers = self.query_many(pairs)
        return [index for index, answer in enumerate(answers)
                if answer is AliasResult.NO_ALIAS]

    def no_alias_context(self, a: MemoryAccess, b: MemoryAccess) -> NoAliasClaim:
        """Describe the validity scope of a no-alias verdict on ``(a, b)``.

        Only meaningful for pairs the analysis answered
        :attr:`AliasResult.NO_ALIAS`.  The default — a plain invocation-set
        claim — is correct for object-disambiguation analyses (Andersen,
        Steensgaard); analyses with instance-relative or symbolic rules
        override this (``basic``, ``rbaa``).
        """
        return NoAliasClaim()

    # -- identification ---------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name}) on {self.module.name!r}>"
