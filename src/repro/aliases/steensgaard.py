"""Steensgaard-style unification-based points-to analysis.

The almost-linear-time cousin of Andersen's analysis: instead of subset
constraints, every assignment *unifies* the equivalence classes of the two
sides (union-find).  The result is coarser — all pointers that ever flow
together share one points-to class — but each constraint is applied exactly
once.  The constraint schedule runs on the shared sparse engine
(:mod:`repro.engine.solver`) as a degenerate problem with no dependence
edges: one topological sweep applies every unification, and the engine's
step counters make the baseline comparable with the iterative analyses in
the scalability reports.  It is included as a classic baseline for the
ablation benchmarks and as the substrate the paper suggests could be
"augmented to map pointers to sets of locations plus ranges".
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..engine.solver import SparseProblem, SparseSolver
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    FreeInst,
    Instruction,
    LoadInst,
    MallocInst,
    PhiInst,
    PtrAddInst,
    ReturnInst,
    SelectInst,
    SigmaInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import NullPointer, Value
from .base import AliasAnalysis
from .results import AliasResult, MemoryAccess

__all__ = ["SteensgaardAliasAnalysis"]


class _UnionFind:
    """Union-find over arbitrary hashable keys with path compression."""

    def __init__(self):
        self._parent: Dict[object, object] = {}
        self._rank: Dict[object, int] = {}

    def find(self, item: object) -> object:
        self._parent.setdefault(item, item)
        self._rank.setdefault(item, 0)
        root = item
        while self._parent[root] is not root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] is not root:
            item, self._parent[item] = self._parent[item], root
        return root

    def union(self, a: object, b: object) -> object:
        root_a, root_b = self.find(a), self.find(b)
        if root_a is root_b:
            return root_a
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return root_a


class _UnificationProblem(SparseProblem):
    """Steensgaard's one-pass constraint schedule on the shared engine.

    Unification has no dependence structure — every constraint is applied
    exactly once and the union-find carries the transitivity — so the
    problem declares no edges and the engine's initial sweep is the whole
    solve.  Sharing the engine still buys uniform step accounting.
    """

    name = "steensgaard"

    def __init__(self, analysis: "SteensgaardAliasAnalysis",
                 constraints: List[Tuple[str, object]]):
        self._analysis = analysis
        self._constraints = constraints
        self._applied: Set[Tuple[str, object]] = set()

    def nodes(self) -> List[Tuple[str, object]]:
        return self._constraints

    def delta_nodes(self, edit) -> List[Tuple[str, object]]:
        """Every constraint: unification is not retractable.

        A union-find merge cannot be undone, and the replaced function's old
        constraints are entangled with live equivalence classes, so there is
        no sound subset of state to retain.  A function edit therefore
        re-seeds the entire schedule; routing the rebuild through
        :meth:`SparseSolver.resolve_from` keeps the step accounting uniform
        with the genuinely incremental analyses.
        """
        return list(self._constraints)

    def transfer(self, constraint: Tuple[str, object]) -> bool:
        self._analysis._apply(constraint)
        return True

    def read(self, constraint: Tuple[str, object]) -> bool:
        return constraint in self._applied

    def write(self, constraint: Tuple[str, object], value: bool) -> None:
        self._applied.add(constraint)


class SteensgaardAliasAnalysis(AliasAnalysis):
    """Unification-based points-to analysis."""

    name = "steensgaard"

    def __init__(self, module: Module):
        super().__init__(module)
        self._uf = _UnionFind()
        #: representative class -> set of allocation objects in that class
        self._objects_of_class: Dict[object, Set[Value]] = {}
        #: representative class -> True when the class contains an unknown pointer
        self._class_unknown: Dict[object, bool] = {}
        #: class of pointers -> class of what their pointees' cells hold
        self._pointee_class: Dict[object, object] = {}
        self.solver_statistics = None
        self._build()

    # -- class helpers --------------------------------------------------------
    def _class_of(self, value: Value) -> object:
        return self._uf.find(value)

    def _mark_object(self, pointer: Value, obj: Value) -> None:
        representative = self._class_of(pointer)
        self._objects_of_class.setdefault(representative, set()).add(obj)

    def _mark_unknown(self, pointer: Value) -> None:
        representative = self._class_of(pointer)
        self._class_unknown[representative] = True

    def _merge(self, key_a: object, key_b: object) -> object:
        """Merge the equivalence classes of two keys, carrying all metadata.

        Every union in the analysis goes through this method so that object
        sets, the unknown flag and pointee cells are always keyed by the
        *current* representative (a raw union-find merge would strand them
        under stale keys, which could make overlapping classes look disjoint
        — an unsoundness).
        """
        class_a, class_b = self._uf.find(key_a), self._uf.find(key_b)
        if class_a is class_b:
            return class_a
        objects = self._objects_of_class.pop(class_a, set()) | \
            self._objects_of_class.pop(class_b, set())
        unknown = self._class_unknown.pop(class_a, False) or \
            self._class_unknown.pop(class_b, False)
        pointee_a = self._pointee_class.pop(class_a, None)
        pointee_b = self._pointee_class.pop(class_b, None)
        merged = self._uf.union(class_a, class_b)
        if objects:
            self._objects_of_class.setdefault(merged, set()).update(objects)
        if unknown:
            self._class_unknown[merged] = True
        # Unify the pointee cells as well (the hallmark of Steensgaard).
        if pointee_a is not None and pointee_b is not None:
            self._pointee_class[merged] = self._merge(pointee_a, pointee_b)
        elif pointee_a is not None or pointee_b is not None:
            self._pointee_class[merged] = self._uf.find(
                pointee_a if pointee_a is not None else pointee_b)
        return self._uf.find(merged)

    def _unify(self, a: Value, b: Value) -> None:
        self._merge(a, b)

    def _pointee_cell(self, pointer: Value) -> object:
        """The class holding whatever is stored *inside* the pointees of ``pointer``."""
        representative = self._class_of(pointer)
        cell = self._pointee_class.get(representative)
        if cell is None:
            cell = f"cell:{id(representative)}"
            self._uf.find(cell)
            self._pointee_class[representative] = cell
        return self._uf.find(cell)

    # -- construction -------------------------------------------------------------
    def _build(self) -> None:
        solver = SparseSolver(_UnificationProblem(self, self._constraints()))
        self.solver_statistics = solver.solve()

    def _constraints(self) -> List[Tuple[str, object]]:
        module = self.module
        constraints: List[Tuple[str, object]] = []
        for variable in module.globals:
            constraints.append(("global", variable))
        for function in module.defined_functions():
            for argument in function.args:
                if argument.type.is_pointer():
                    constraints.append(("argument", argument))
            for inst in function.instructions():
                constraints.append(("inst", inst))
        # Interprocedural unification of actuals with formals and returns runs
        # after every intraprocedural constraint, as in the original one-pass
        # formulation.
        for function in module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, CallInst):
                    constraints.append(("call", inst))
        return constraints

    # -- incremental refresh --------------------------------------------------------
    def refresh_function(self, old_function, new_function, edit) -> Dict[str, int]:
        """Rebuild the unification fixed point after one function was replaced.

        See :meth:`_UnificationProblem.delta_nodes`: merges cannot be undone,
        so nothing is retained — the class state is reset and every
        constraint of the edited module is re-applied through the shared
        re-seed entry point, accumulating into the same statistics object.
        """
        self._uf = _UnionFind()
        self._objects_of_class = {}
        self._class_unknown = {}
        self._pointee_class = {}
        problem = _UnificationProblem(self, self._constraints())
        seeds = problem.delta_nodes(edit)
        solver = SparseSolver(problem)
        self.solver_statistics.accumulate(solver.resolve_from(problem, seeds))
        return {"reseeded": len(seeds), "retained": 0}

    def _apply(self, constraint: Tuple[str, object]) -> None:
        kind, subject = constraint
        if kind == "global":
            self._mark_object(subject, subject)
        elif kind == "argument":
            self._mark_unknown(subject)
        elif kind == "inst":
            self._visit(subject)
        elif kind == "call":
            self._apply_call_bindings(subject)

    def _apply_call_bindings(self, inst: CallInst) -> None:
        callee = self.module.get_function(inst.callee_name())
        if callee is None or callee.is_declaration():
            return
        for formal, actual in zip(callee.args, inst.args):
            if formal.type.is_pointer() and actual.type.is_pointer():
                self._unify(formal, actual)
        if inst.type.is_pointer():
            for block in callee.blocks:
                terminator = block.terminator
                if isinstance(terminator, ReturnInst) and terminator.value is not None \
                        and terminator.value.type.is_pointer():
                    self._unify(inst, terminator.value)

    def _visit(self, inst: Instruction) -> None:
        if isinstance(inst, (MallocInst, AllocaInst)):
            self._mark_object(inst, inst)
        elif isinstance(inst, PtrAddInst):
            self._unify(inst, inst.base)
        elif isinstance(inst, CastInst) and inst.type.is_pointer():
            if inst.kind == "bitcast":
                self._unify(inst, inst.value)
            else:
                self._mark_unknown(inst)
        elif isinstance(inst, SigmaInst) and inst.type.is_pointer():
            self._unify(inst, inst.source)
        elif isinstance(inst, PhiInst) and inst.type.is_pointer():
            for value, _ in inst.incoming():
                if not isinstance(value, NullPointer):
                    self._unify(inst, value)
        elif isinstance(inst, SelectInst) and inst.type.is_pointer():
            self._unify(inst, inst.true_value)
            self._unify(inst, inst.false_value)
        elif isinstance(inst, FreeInst):
            self._unify(inst, inst.pointer)
        elif isinstance(inst, LoadInst) and inst.type.is_pointer():
            cell = self._pointee_cell(inst.pointer)
            self._merge(cell, inst)
        elif isinstance(inst, StoreInst) and inst.value.type.is_pointer():
            cell = self._pointee_cell(inst.pointer)
            self._merge(cell, inst.value)
        elif isinstance(inst, CallInst) and inst.type.is_pointer():
            callee = self.module.get_function(inst.callee_name())
            if callee is None or callee.is_declaration():
                self._mark_unknown(inst)

    # -- queries ------------------------------------------------------------------------
    def class_objects(self, pointer: Value) -> Set[Value]:
        representative = self._class_of(pointer)
        return set(self._objects_of_class.get(representative, set()))

    def class_is_unknown(self, pointer: Value) -> bool:
        representative = self._class_of(pointer)
        return self._class_unknown.get(representative, False)

    def alias(self, a: MemoryAccess, b: MemoryAccess) -> AliasResult:
        if a.pointer is b.pointer:
            return AliasResult.MUST_ALIAS
        if isinstance(a.pointer, NullPointer) or isinstance(b.pointer, NullPointer):
            return AliasResult.NO_ALIAS
        class_a = self._class_of(a.pointer)
        class_b = self._class_of(b.pointer)
        if class_a is class_b:
            return AliasResult.MAY_ALIAS
        unknown_a = self._class_unknown.get(class_a, False)
        unknown_b = self._class_unknown.get(class_b, False)
        if unknown_a or unknown_b:
            return AliasResult.MAY_ALIAS
        objects_a = self._objects_of_class.get(class_a, set())
        objects_b = self._objects_of_class.get(class_b, set())
        if objects_a and objects_b and not (objects_a & objects_b):
            return AliasResult.NO_ALIAS
        if not objects_a and not objects_b:
            return AliasResult.MAY_ALIAS
        return AliasResult.MAY_ALIAS
