"""Symbolic range analysis of integer variables (the bootstrap of Figure 5).

This is the "off-the-shelf" range analysis the paper assumes (à la Blume and
Eigenmann): a sparse abstract interpretation on e-SSA form mapping every
integer SSA value to a :class:`~repro.symbolic.interval.SymbolicInterval`
whose bounds are expressions over the *symbolic kernel* — function
parameters, results of external library calls, global values and (optionally)
loaded values.

The fixed-point schedule matches the one the paper uses for pointers
(Section 3.9): an ascending phase with widening applied at φ-functions after
the first complete sweep, followed by a descending (narrowing) sequence of
length two.  Scheduling is delegated to the shared sparse solver of
:mod:`repro.engine.solver`: def-use edges between integer instructions form
the dependence graph, so acyclic code stabilises in one visit and only
φ-cycles iterate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.cfg import reverse_post_order
from ..engine.solver import SparseProblem, SparseSolver
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    CastInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    SigmaInst,
)
from ..ir.module import Module
from ..ir.values import Argument, ConstantInt, UndefValue, Value
from ..symbolic import (
    EMPTY_INTERVAL,
    NEG_INF,
    POS_INF,
    Symbol,
    SymbolicInterval,
    TOP_INTERVAL,
    sym_add,
)

__all__ = ["RangeAnalysisOptions", "SymbolicRangeAnalysis"]


@dataclass
class RangeAnalysisOptions:
    """Knobs for the integer range analysis."""

    #: Treat integer loads as fresh kernel symbols (paper-style, à la Nazaré
    #: et al.) instead of the fully conservative [-inf, +inf].
    loads_as_symbols: bool = True
    #: Treat results of calls to external functions as kernel symbols.
    external_calls_as_symbols: bool = True
    #: Maximum number of ascending passes before forcing convergence.
    max_ascending_passes: int = 8
    #: Length of the descending (narrowing) sequence.
    descending_passes: int = 2


class _IntegerRangeProblem(SparseProblem):
    """Adapter presenting the integer range analysis to the sparse solver."""

    name = "symbolic-ranges"

    def __init__(self, analysis: "SymbolicRangeAnalysis", nodes: List[Instruction]):
        self._analysis = analysis
        self._nodes = nodes

    def nodes(self) -> List[Instruction]:
        return self._nodes

    def dependencies(self, inst: Instruction):
        if isinstance(inst, BinaryInst):
            return (inst.lhs, inst.rhs)
        if isinstance(inst, PhiInst):
            return [value for value, _ in inst.incoming()]
        if isinstance(inst, SigmaInst):
            deps = [inst.source]
            if inst.lower is not None:
                deps.append(inst.lower)
            if inst.upper is not None:
                deps.append(inst.upper)
            return deps
        if isinstance(inst, CastInst):
            return (inst.value,)
        if isinstance(inst, SelectInst):
            return (inst.true_value, inst.false_value)
        return ()

    def transfer(self, inst: Instruction) -> SymbolicInterval:
        return self._analysis._evaluate(inst)

    def read(self, inst: Instruction) -> SymbolicInterval:
        return self._analysis._ranges.get(inst, EMPTY_INTERVAL)

    def write(self, inst: Instruction, value: SymbolicInterval) -> None:
        self._analysis._ranges[inst] = value

    def is_refinement_point(self, inst: Instruction) -> bool:
        return isinstance(inst, PhiInst)

    def widen(self, inst: Instruction, old: SymbolicInterval,
              new: SymbolicInterval) -> SymbolicInterval:
        return old.widen(new) if not old.is_empty else new

    def narrow(self, inst: Instruction, old: SymbolicInterval,
               new: SymbolicInterval) -> SymbolicInterval:
        return old.narrow(new) if not old.is_empty else new


class SymbolicRangeAnalysis:
    """Maps every integer SSA value of a module to a symbolic interval."""

    def __init__(self, module: Module, options: Optional[RangeAnalysisOptions] = None):
        self.module = module
        self.options = options or RangeAnalysisOptions()
        self._ranges: Dict[Value, SymbolicInterval] = {}
        self._kernel: Dict[Value, Symbol] = {}
        self.solver_statistics = None
        self._run()

    # -- public API ---------------------------------------------------------
    @classmethod
    def run(cls, module: Module,
            options: Optional[RangeAnalysisOptions] = None) -> "SymbolicRangeAnalysis":
        """Convenience constructor mirroring the other analyses."""
        return cls(module, options)

    def range_of(self, value: Value) -> SymbolicInterval:
        """The symbolic interval of ``value`` (``R(v)`` in the paper).

        Constants evaluate to point intervals on the fly; values the analysis
        never reached (dead code, non-integers) map to ``[-inf, +inf]``.
        """
        if isinstance(value, ConstantInt):
            return SymbolicInterval.point(value.value)
        if isinstance(value, UndefValue):
            return TOP_INTERVAL
        interval = self._ranges.get(value)
        if interval is None or interval.is_empty:
            return TOP_INTERVAL
        return interval

    def kernel_symbols(self) -> List[Symbol]:
        """All symbols of the program's symbolic kernel discovered so far."""
        return list(self._kernel.values())

    def symbol_for(self, value: Value) -> Optional[Symbol]:
        """The kernel symbol assigned to ``value``, if any."""
        return self._kernel.get(value)

    def kernel_bindings(self) -> Dict[str, Value]:
        """Symbol name → the IR value the symbol stands for.

        The inverse of :meth:`symbol_for`, used by the soundness oracle to
        bind kernel symbols to concretely observed runtime values when
        checking that computed intervals enclose every observed value
        (query extraction hook).
        """
        return {symbol.name: value for value, symbol in self._kernel.items()}

    def integer_values(self, function: Function) -> List[Value]:
        """Every integer-typed SSA value of ``function`` with a computed range
        (arguments first, then instructions in block order)."""
        values: List[Value] = [argument for argument in function.args
                               if argument.type.is_integer()]
        values.extend(inst for inst in function.instructions()
                      if inst.type.is_integer())
        return values

    # -- kernel management -----------------------------------------------------
    def _fresh_symbol(self, value: Value, hint: str) -> Symbol:
        symbol = self._kernel.get(value)
        if symbol is None:
            symbol = Symbol(hint)
            self._kernel[value] = symbol
        return symbol

    def _symbol_interval(self, value: Value, hint: str) -> SymbolicInterval:
        return SymbolicInterval.point(self._fresh_symbol(value, hint))

    # -- evaluation --------------------------------------------------------------
    def _run(self) -> None:
        for function in self.module.defined_functions():
            self._seed_arguments(function)
        nodes: List[Instruction] = []
        for function in self.module.defined_functions():
            nodes.extend(self._integer_instructions(function))
        solver = SparseSolver(
            _IntegerRangeProblem(self, nodes),
            max_node_evaluations=self.options.max_ascending_passes,
            descending_passes=self.options.descending_passes,
        )
        self.solver_statistics = solver.solve()

    def refresh_function(self, old_function: Function,
                         new_function: Function) -> None:
        """Function-granular incremental re-run (manager edit hook).

        The analysis is function-local — interprocedural flows enter the
        symbolic kernel instead of crossing def-use edges — so replacing one
        function only requires purging its old per-value state and
        re-solving the new body's nodes.  Solver statistics accumulate so
        ``solver_statistics.steps`` totals the initial solve plus refreshes.
        """
        stale = set(old_function.args)
        stale.update(old_function.instructions())
        for value in stale:
            self._ranges.pop(value, None)
            self._kernel.pop(value, None)
        self._seed_arguments(new_function)
        solver = SparseSolver(
            _IntegerRangeProblem(self, self._integer_instructions(new_function)),
            max_node_evaluations=self.options.max_ascending_passes,
            descending_passes=self.options.descending_passes,
        )
        self.solver_statistics.accumulate(solver.solve())

    def _seed_arguments(self, function: Function) -> None:
        for argument in function.args:
            if argument.type.is_integer():
                hint = f"{function.name}.{argument.name}"
                self._ranges[argument] = self._symbol_interval(argument, hint)

    def _integer_instructions(self, function: Function) -> List[Instruction]:
        order: List[Instruction] = []
        for block in reverse_post_order(function):
            for inst in block.instructions:
                if inst.type.is_integer():
                    order.append(inst)
        return order

    # -- transfer functions ----------------------------------------------------------
    def _operand_range(self, value: Value) -> SymbolicInterval:
        if isinstance(value, ConstantInt):
            return SymbolicInterval.point(value.value)
        if isinstance(value, UndefValue):
            return TOP_INTERVAL
        interval = self._ranges.get(value)
        if interval is None or interval.is_empty:
            # Not yet computed (back edge on the first pass): assume top so
            # the meet in σ nodes stays sound.
            return TOP_INTERVAL
        return interval

    def _evaluate(self, inst: Instruction) -> SymbolicInterval:
        if isinstance(inst, BinaryInst):
            return self._evaluate_binary(inst)
        if isinstance(inst, ICmpInst):
            return SymbolicInterval(0, 1)
        if isinstance(inst, PhiInst):
            incoming = [self._ranges.get(value, EMPTY_INTERVAL)
                        if isinstance(value, Instruction) or isinstance(value, Argument)
                        else self._operand_range(value)
                        for value, _ in inst.incoming()]
            return SymbolicInterval.join_all(
                interval for interval in incoming if not interval.is_empty
            )
        if isinstance(inst, SigmaInst):
            return self._evaluate_sigma(inst)
        if isinstance(inst, CastInst):
            if inst.value.type.is_integer() or inst.kind in ("trunc", "sext", "zext"):
                return self._operand_range(inst.value)
            return TOP_INTERVAL
        if isinstance(inst, SelectInst):
            return self._operand_range(inst.true_value).join(
                self._operand_range(inst.false_value))
        if isinstance(inst, LoadInst):
            if self.options.loads_as_symbols:
                hint = f"{inst.function.name}.load.{inst.name or id(inst)}"
                return self._symbol_interval(inst, hint)
            return TOP_INTERVAL
        if isinstance(inst, CallInst):
            if inst.is_external() and self.options.external_calls_as_symbols:
                hint = f"{inst.function.name}.{inst.callee_name()}.{inst.name or id(inst)}"
                return self._symbol_interval(inst, hint)
            return TOP_INTERVAL
        return TOP_INTERVAL

    def _evaluate_binary(self, inst: BinaryInst) -> SymbolicInterval:
        lhs = self._operand_range(inst.lhs)
        rhs = self._operand_range(inst.rhs)
        opcode = inst.opcode
        if opcode == "add":
            return lhs.add(rhs)
        if opcode == "sub":
            return lhs.sub(rhs)
        if opcode == "mul":
            return lhs.mul(rhs)
        if opcode == "sdiv":
            if rhs.is_constant() and rhs.lower == rhs.upper:
                divisor = rhs.lower.constant_value()
                if divisor not in (None, 0) and lhs.is_constant():
                    low = lhs.lower.constant_value() // divisor
                    high = lhs.upper.constant_value() // divisor
                    return SymbolicInterval(min(low, high), max(low, high))
            return TOP_INTERVAL
        if opcode == "srem":
            if rhs.is_constant() and rhs.lower == rhs.upper:
                modulus = abs(rhs.lower.constant_value() or 0)
                if modulus:
                    return SymbolicInterval(-(modulus - 1), modulus - 1)
            return TOP_INTERVAL
        if opcode in ("and", "or", "xor", "shl", "ashr"):
            if lhs.is_constant() and rhs.is_constant() \
                    and lhs.lower == lhs.upper and rhs.lower == rhs.upper:
                a = lhs.lower.constant_value()
                b = rhs.lower.constant_value()
                table = {"and": a & b, "or": a | b, "xor": a ^ b,
                         "shl": a << b if b >= 0 else 0, "ashr": a >> b if b >= 0 else 0}
                return SymbolicInterval.point(table[opcode])
            if opcode == "and" and rhs.is_constant() and rhs.lower == rhs.upper \
                    and (rhs.lower.constant_value() or 0) >= 0:
                return SymbolicInterval(0, rhs.lower.constant_value())
            return TOP_INTERVAL
        # Floating-point opcodes on integers should not occur; stay sound.
        return TOP_INTERVAL

    def _evaluate_sigma(self, inst: SigmaInst) -> SymbolicInterval:
        source = self._operand_range(inst.source)
        lower_bound = NEG_INF
        upper_bound = POS_INF
        if inst.lower is not None:
            bound = self._operand_range(inst.lower)
            if not bound.is_empty and bound.lower is not NEG_INF:
                lower_bound = sym_add(bound.lower, inst.lower_adjust)
        if inst.upper is not None:
            bound = self._operand_range(inst.upper)
            if not bound.is_empty and bound.upper is not POS_INF:
                upper_bound = sym_add(bound.upper, inst.upper_adjust)
        constraint = SymbolicInterval(lower_bound, upper_bound)
        result = source.meet(constraint)
        if result.is_empty:
            # An empty meet means the guarded path is infeasible under the
            # current approximation; keep the constraint so downstream users
            # still see a well-formed interval.
            return constraint
        return result
