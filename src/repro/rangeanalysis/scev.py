"""Scalar evolution: closed forms for loop induction variables.

LLVM's ``scev-aa`` (one of the two baselines in Figure 13) disambiguates
pointers whose addresses have closed forms ``Base + iter × Step`` within a
loop.  This module computes exactly those *add recurrences* for φ-functions
at loop headers and for values derived from them by constant-step arithmetic
(integer adds/subs and pointer arithmetic).

A value's evolution is either:

* :class:`AddRecurrence` — ``{base, +, step}`` w.r.t. an enclosing loop,
  where ``base`` is an IR value (loop-invariant) plus a constant byte/int
  offset and ``step`` is a constant per-iteration increment; or
* ``None`` — the value has no affine closed form this simple engine can see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.loops import Loop, LoopInfo
from ..ir.function import Function
from ..ir.instructions import BinaryInst, CastInst, Instruction, PhiInst, PtrAddInst, SigmaInst
from ..ir.module import Module
from ..ir.values import Argument, ConstantInt, Value

__all__ = ["AddRecurrence", "ScalarEvolution"]

#: Sentinel distinguishing "never computed" from a cached ``None`` (not
#: affine) without probing the cache dictionary twice per hit.
_UNCOMPUTED = object()


@dataclass(frozen=True)
class AddRecurrence:
    """An affine evolution ``base + offset + iteration * step`` inside ``loop``."""

    loop: Loop
    base: Value
    offset: int
    step: int

    def with_offset(self, delta: int) -> "AddRecurrence":
        return AddRecurrence(self.loop, self.base, self.offset + delta, self.step)

    def constant_distance_from(self, other: "AddRecurrence") -> Optional[int]:
        """Distance ``self - other`` when it is a compile-time constant.

        The distance is constant when both recurrences advance in lock-step
        over the same loop from the same base value.
        """
        if self.loop is not other.loop or self.base is not other.base:
            return None
        if self.step != other.step:
            return None
        return self.offset - other.offset

    def __repr__(self) -> str:
        base_name = getattr(self.base, "name", "?") or "?"
        return f"{{{base_name}+{self.offset}, +, {self.step}}}"


class ScalarEvolution:
    """Per-function add-recurrence computation."""

    def __init__(self, function: Function, loop_info: Optional[LoopInfo] = None):
        self.function = function
        self.loop_info = loop_info or LoopInfo.compute(function)
        self._cache: Dict[Value, Optional[AddRecurrence]] = {}

    @classmethod
    def for_module(cls, module: Module) -> Dict[Function, "ScalarEvolution"]:
        """Build a :class:`ScalarEvolution` for every defined function."""
        return {function: cls(function) for function in module.defined_functions()}

    # -- public API -------------------------------------------------------------
    def evolution_of(self, value: Value) -> Optional[AddRecurrence]:
        """The add recurrence of ``value`` or ``None`` when not affine."""
        cached = self._cache.get(value, _UNCOMPUTED)
        if cached is not _UNCOMPUTED:
            return cached
        # Seed with None to cut cycles through φs while we recurse.
        self._cache[value] = None
        result = self._compute(value)
        self._cache[value] = result
        return result

    # -- helpers -------------------------------------------------------------------
    def _loop_invariant(self, value: Value, loop: Loop) -> bool:
        """A value is invariant in ``loop`` when it is not defined inside it."""
        if isinstance(value, (ConstantInt, Argument)):
            return True
        if isinstance(value, Instruction):
            return value.parent is None or value.parent not in loop.blocks
        return True

    def _compute(self, value: Value) -> Optional[AddRecurrence]:
        if isinstance(value, SigmaInst):
            return self.evolution_of(value.source)
        if isinstance(value, CastInst) and value.kind in ("sext", "zext", "trunc", "bitcast"):
            return self.evolution_of(value.value)
        if isinstance(value, PhiInst):
            return self._compute_phi(value)
        if isinstance(value, BinaryInst) and value.opcode in ("add", "sub"):
            return self._compute_int_step(value)
        if isinstance(value, PtrAddInst):
            return self._compute_ptradd(value)
        return None

    def _compute_phi(self, phi: PhiInst) -> Optional[AddRecurrence]:
        if phi.parent is None:
            return None
        loop = self.loop_info.loop_for_block(phi.parent)
        if loop is None or loop.header is not phi.parent:
            return None
        incoming = phi.incoming()
        if len(incoming) != 2:
            return None
        start_value: Optional[Value] = None
        latch_value: Optional[Value] = None
        for value, block in incoming:
            if block in loop.blocks:
                latch_value = value
            else:
                start_value = value
        if start_value is None or latch_value is None:
            return None
        step = self._constant_step(latch_value, phi, loop)
        if step is None:
            return None
        return AddRecurrence(loop, start_value, 0, step)

    def _constant_step(self, value: Value, phi: PhiInst, loop: Loop) -> Optional[int]:
        """Total constant increment along the chain from ``phi`` back to ``value``."""
        total = 0
        current = value
        for _ in range(64):  # defensive bound on chain length
            if current is phi:
                return total
            if isinstance(current, SigmaInst):
                current = current.source
                continue
            if isinstance(current, CastInst) \
                    and current.kind in ("sext", "zext", "trunc", "bitcast"):
                current = current.value
                continue
            if isinstance(current, BinaryInst) and current.opcode in ("add", "sub"):
                if isinstance(current.rhs, ConstantInt):
                    delta = current.rhs.value
                    total += delta if current.opcode == "add" else -delta
                    current = current.lhs
                    continue
                if current.opcode == "add" and isinstance(current.lhs, ConstantInt):
                    total += current.lhs.value
                    current = current.rhs
                    continue
                return None
            if isinstance(current, PtrAddInst):
                constant = current.constant_byte_offset()
                if constant is None:
                    return None
                total += constant
                current = current.base
                continue
            return None
        return None

    def _compute_int_step(self, inst: BinaryInst) -> Optional[AddRecurrence]:
        if isinstance(inst.rhs, ConstantInt):
            inner = self.evolution_of(inst.lhs)
            if inner is None:
                return None
            delta = inst.rhs.value if inst.opcode == "add" else -inst.rhs.value
            return inner.with_offset(delta)
        if inst.opcode == "add" and isinstance(inst.lhs, ConstantInt):
            inner = self.evolution_of(inst.rhs)
            if inner is None:
                return None
            return inner.with_offset(inst.lhs.value)
        return None

    def _compute_ptradd(self, inst: PtrAddInst) -> Optional[AddRecurrence]:
        constant = inst.constant_byte_offset()
        if constant is not None:
            inner = self.evolution_of(inst.base)
            if inner is not None:
                return inner.with_offset(constant)
            # A pointer stepping by a constant from a loop-invariant base is
            # itself a (degenerate, step-0) recurrence only inside a loop —
            # without a loop there is nothing to say.
            return None
        # Varying index: base must be loop-invariant and the index an affine
        # recurrence; the result advances by index.step * scale.
        index = inst.index
        assert index is not None
        index_rec = self.evolution_of(index)
        if index_rec is None:
            return None
        if not self._loop_invariant(inst.base, index_rec.loop):
            return None
        if not isinstance(index_rec.base, ConstantInt):
            # A symbolic loop start cannot be folded into the pointer base;
            # treating it as zero would let unrelated induction variables
            # compare as constant distances, which would be unsound.
            return None
        start_offset = index_rec.base.value * inst.scale
        return AddRecurrence(
            index_rec.loop,
            inst.base,
            start_offset + index_rec.offset * inst.scale + inst.offset,
            index_rec.step * inst.scale,
        )
