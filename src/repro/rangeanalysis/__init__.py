"""Scalar analyses feeding the pointer disambiguation: symbolic ranges and SCEV."""

from .scev import AddRecurrence, ScalarEvolution
from .symbolic_ra import RangeAnalysisOptions, SymbolicRangeAnalysis

__all__ = [
    "AddRecurrence",
    "ScalarEvolution",
    "RangeAnalysisOptions",
    "SymbolicRangeAnalysis",
]
