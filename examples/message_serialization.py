#!/usr/bin/env python3
"""The paper's Figure 1: disambiguating the header and payload loops.

Run with::

    python examples/message_serialization.py

This reproduces the motivating example of the paper end to end: the
``prepare`` routine writes a message identifier in its first loop and the
payload in its second loop.  A compiler can only fuse, swap or parallelise
the two loops if it can prove the stores never touch the same byte — which
requires symbolic range information no stateless heuristic provides.

The script prints the abstract state (GR) of each store pointer at the fixed
point (compare with Figure 12 of the paper), the trace of the widening /
narrowing schedule, and the verdict of every analysis on the critical query.
"""

from repro import BasicAliasAnalysis, RBAAAliasAnalysis, SCEVAliasAnalysis
from repro.aliases import MemoryAccess
from repro.benchgen import FIGURE1_SOURCE, compile_figure1
from repro.core import GlobalAnalysisOptions, GlobalRangeAnalysis, RBAAOptions
from repro.ir.instructions import StoreInst


def main() -> None:
    print("=== Source (paper, Figure 1) ===")
    print(FIGURE1_SOURCE)

    module = compile_figure1()
    rbaa = RBAAAliasAnalysis(module)
    basic = BasicAliasAnalysis(module)
    scev = SCEVAliasAnalysis(module)

    prepare = module.get_function("prepare")
    stores = [inst for inst in prepare.instructions() if isinstance(inst, StoreInst)]
    line6, line7, line10 = stores  # *i = 0; *(i+1) = 0xFF; *i = *m;

    print("=== Abstract states at the fixed point (compare with Figure 12) ===")
    for store, label in zip(stores, ("*i = 0        (line 6)",
                                     "*(i+1) = 0xFF (line 7)",
                                     "*i = *m       (line 10)")):
        print(f"  GR[{label}] = {rbaa.global_state(store.pointer)}")

    print()
    print("=== The critical query: line 6 vs line 10 ===")
    outcome = rbaa.query(MemoryAccess.of(line6.pointer), MemoryAccess.of(line10.pointer))
    print(f"  rbaa : no-alias={outcome.no_alias} (criterion: {outcome.reason.value})")
    print(f"  basic: {basic.alias_pointers(line6.pointer, line10.pointer)}")
    print(f"  scev : {scev.alias_pointers(line6.pointer, line10.pointer)}")

    print()
    print("=== Same-iteration query: line 6 vs line 7 (local test) ===")
    outcome = rbaa.query(MemoryAccess.of(line6.pointer), MemoryAccess.of(line7.pointer))
    print(f"  rbaa : no-alias={outcome.no_alias} (criterion: {outcome.reason.value})")

    print()
    print("=== Fixed-point schedule (Figure 12) ===")
    traced = GlobalRangeAnalysis(compile_figure1(),
                                 options=GlobalAnalysisOptions(track_trace=True))
    for label, snapshot in traced.trace():
        tracked = sum(1 for state in snapshot.values()
                      if not state.is_bottom and not state.is_top)
        print(f"  {label:20s}: {tracked} pointers with non-trivial abstract state")


if __name__ == "__main__":
    main()
