#!/usr/bin/env python3
"""Quickstart: compile a C snippet and ask alias queries.

Run with::

    python examples/quickstart.py

The example compiles a small C function through the bundled mini-C frontend,
runs the range-based alias analysis (RBAA) of the paper next to the
``basicaa``-style baseline, and prints the answer every analysis gives for a
few interesting pointer pairs together with the underlying abstract states.
"""

from repro import BasicAliasAnalysis, RBAAAliasAnalysis, SCEVAliasAnalysis, compile_source
from repro.ir.instructions import StoreInst
from repro.ir.printer import print_module

SOURCE = r"""
struct header { int id; int length; };

void build_packet(char* buffer, int n, char* payload) {
    struct header* h = (struct header*)buffer;
    char* body = buffer + sizeof(struct header);
    int i;

    h->id = 1;
    h->length = n;
    for (i = 0; i < n; i++) {
        body[i] = payload[i];
    }
}
"""


def main() -> None:
    module = compile_source(SOURCE, "quickstart")
    print("=== IR after the preparation pipeline (mem2reg + e-SSA) ===")
    print(print_module(module))

    rbaa = RBAAAliasAnalysis(module)
    basic = BasicAliasAnalysis(module)
    scev = SCEVAliasAnalysis(module)

    function = module.get_function("build_packet")
    stores = [inst for inst in function.instructions() if isinstance(inst, StoreInst)]
    id_store, length_store, body_store = stores

    pairs = [
        ("h->id      vs h->length ", id_store.pointer, length_store.pointer),
        ("h->id      vs body[i]   ", id_store.pointer, body_store.pointer),
        ("h->length  vs body[i]   ", length_store.pointer, body_store.pointer),
    ]

    print("=== Alias queries ===")
    print(f"{'pair':28s} {'rbaa':12s} {'basic':14s} {'scev':12s}")
    for label, a, b in pairs:
        print(f"{label:28s} {str(rbaa.alias_pointers(a, b)):12s} "
              f"{str(basic.alias_pointers(a, b)):14s} "
              f"{str(scev.alias_pointers(a, b)):12s}")

    print()
    print("=== Abstract states (GR) of the queried pointers ===")
    for store, name in zip(stores, ("h->id", "h->length", "body[i]")):
        print(f"  GR({name:10s}) = {rbaa.global_state(store.pointer)}")
        print(f"  LR({name:10s}) = {rbaa.local_state(store.pointer)}")


if __name__ == "__main__":
    main()
