#!/usr/bin/env python3
"""The paper's Figures 3 and 4: the local test on strided loop accesses.

Run with::

    python examples/loop_disambiguation.py

``accelerate`` updates ``p[i]`` and ``p[i+1]`` in a loop that advances ``i``
by two.  The *global* ranges of the two addresses overlap (``[0, N+1]`` vs
``[1, N+2]``), so the global test cannot separate them; but at any given
iteration both are constant offsets of the same base address ``p + i``, and
the *local* test — the paper's pointer renaming of Figure 4 — proves they
never collide at the same moment.  That is exactly the fact a vectoriser
needs to keep both updates in one loop body.
"""

from repro import BasicAliasAnalysis, RBAAAliasAnalysis, SCEVAliasAnalysis, compile_source
from repro.aliases import MemoryAccess
from repro.benchgen import FIGURE3_SOURCE, compile_figure3
from repro.core import global_test
from repro.ir.instructions import StoreInst
from repro.transforms import PipelineOptions, canonical_bases


def main() -> None:
    print("=== Source (paper, Figure 3) ===")
    print(FIGURE3_SOURCE)

    module = compile_figure3()
    rbaa = RBAAAliasAnalysis(module)

    accelerate = module.get_function("accelerate")
    stores = [inst for inst in accelerate.instructions() if isinstance(inst, StoreInst)]
    p_i, p_i1 = stores

    print("=== Global states: ranges overlap, the global test fails ===")
    state_a = rbaa.global_state(p_i.pointer)
    state_b = rbaa.global_state(p_i1.pointer)
    print(f"  GR(p[i])   = {state_a}")
    print(f"  GR(p[i+1]) = {state_b}")
    print(f"  global test says no-alias: {global_test(state_a, state_b, 4, 4).no_alias}")

    print()
    print("=== Local states: one shared base, disjoint constant offsets ===")
    print(f"  LR(p[i])   = {rbaa.local_state(p_i.pointer)}")
    print(f"  LR(p[i+1]) = {rbaa.local_state(p_i1.pointer)}")
    outcome = rbaa.query(MemoryAccess.of(p_i.pointer), MemoryAccess.of(p_i1.pointer))
    print(f"  rbaa verdict: no-alias={outcome.no_alias} (criterion: {outcome.reason.value})")

    print()
    print("=== Baselines on the same query ===")
    print(f"  basic: {BasicAliasAnalysis(module).alias_pointers(p_i.pointer, p_i1.pointer)}")
    print(f"  scev : {SCEVAliasAnalysis(module).alias_pointers(p_i.pointer, p_i1.pointer)}")

    print()
    print("=== The Figure 4 renaming, materialised in the IR ===")
    renamed = compile_source(FIGURE3_SOURCE, "figure3_renamed",
                             pipeline_options=PipelineOptions(rename_region_pointers=True))
    bases = canonical_bases(renamed.get_function("accelerate"))
    for base in bases:
        print(f"  canonical base: {base!r}")


if __name__ == "__main__":
    main()
