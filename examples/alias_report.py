#!/usr/bin/env python3
"""Whole-program alias-analysis report for a C file or a synthetic benchmark.

Usage::

    python examples/alias_report.py                # report on a built-in benchmark
    python examples/alias_report.py my_program.c   # report on your own mini-C file
    python examples/alias_report.py --program bc   # one of the 22 suite programs

For every defined function the script enumerates all pointer pairs, queries
the four analyses of the paper's evaluation (scev, basic, rbaa, rbaa+basic)
and prints a per-function and whole-program summary — a miniature Figure 13
for a single program.
"""

import argparse
import sys

from repro import compile_source
from repro.benchgen import build_program
from repro.evaluation import enumerate_query_pairs, format_table, run_queries
from repro.evaluation.precision import standard_factories


def load_module(args):
    if args.source is not None:
        with open(args.source, "r", encoding="utf-8") as handle:
            return compile_source(handle.read(), args.source), args.source
    program = build_program(args.program)
    return program.module, f"synthetic benchmark {args.program!r}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", nargs="?", default=None,
                        help="a mini-C source file to analyse")
    parser.add_argument("--program", default="anagram",
                        help="name of a built-in synthetic suite program")
    parser.add_argument("--max-pairs", type=int, default=5000,
                        help="cap on pointer pairs per function")
    args = parser.parse_args(argv)

    module, description = load_module(args)
    print(f"Analysing {description}: {module.instruction_count()} instructions, "
          f"{module.pointer_count()} pointer values\n")

    result = run_queries(module.name, module, standard_factories(),
                         max_pairs_per_function=args.max_pairs)

    rows = []
    for name in ("scev", "basic", "rbaa", "r+b"):
        rows.append([name, result.no_alias.get(name, 0),
                     f"{result.percentage(name):.2f}",
                     f"{result.build_seconds.get(name, 0.0) * 1000:.1f}",
                     f"{result.query_seconds.get(name, 0.0) * 1000:.1f}"])
    print(format_table(
        ["Analysis", "no-alias", "% of queries", "build (ms)", "queries (ms)"],
        rows, title=f"{result.queries} pointer-pair queries"))

    rbaa_extra = result.extra.get("rbaa", {})
    if rbaa_extra:
        print()
        print("rbaa breakdown: "
              f"{rbaa_extra.get('answered_by_global', 0)} by the global test, "
              f"{rbaa_extra.get('answered_by_local', 0)} by the local test, "
              f"rest by distinct allocation sites")

    # Per-function detail for the five functions with the most pointers.
    per_function = []
    for function in sorted(module.defined_functions(),
                           key=lambda f: len(f.pointer_values()), reverse=True)[:5]:
        pairs = list(enumerate_query_pairs_single(module, function, args.max_pairs))
        per_function.append([function.name, len(function.pointer_values()), len(pairs)])
    print()
    print(format_table(["Function", "#pointers", "#queries"], per_function,
                       title="Largest functions"))
    return 0


def enumerate_query_pairs_single(module, function, cap):
    for pair in enumerate_query_pairs(module, cap):
        if pair.function is function:
            yield pair


if __name__ == "__main__":
    sys.exit(main())
