#!/usr/bin/env python3
"""Walkthrough: the analysis service — resident modules, edits, queries.

Run with::

    python examples/query_server.py

The example drives the serving layer both ways:

1. through the in-process :class:`repro.service.AnalysisSession` API —
   load a program, ask alias and range queries from warm analysis state,
   apply a single-function edit and watch the incremental path re-run only
   part of the work;
2. through the stdin/stdout daemon (``python -m repro.service``), speaking
   the same line-delimited JSON protocol a non-Python client would.
"""

import json
import os
import subprocess
import sys

import repro
from repro.service import AnalysisSession

SOURCE = r"""
void rotate(int* ring, int n) {
    int i;
    int first = ring[0];
    for (i = 0; i + 1 < n; i++) {
        ring[i] = ring[i + 1];
    }
    ring[n - 1] = first;
}
int main(int argc, char** argv) {
    int n = atoi(argv[1]);
    int* ring = (int*)malloc(n * 4);
    rotate(ring, n);
    return 0;
}
"""

# The same program with one function body edited: the incremental path
# re-analyses `rotate` and the interprocedural cone, nothing else.
EDITED = SOURCE.replace("ring[i] = ring[i + 1];",
                        "ring[i] = ring[i + 1] + 1;")


def in_process_walkthrough() -> None:
    print("=== In-process AnalysisSession ===")
    session = AnalysisSession()
    loaded = session.load_source("demo", SOURCE)
    print(f"loaded module with functions {loaded['functions']}")

    # Source-level names do not survive mem2reg; discover the SSA values.
    values = session.values("demo", "rotate")["values"]
    pointers = [v["name"] for v in values if v["pointer"]]
    print(f"pointer values of rotate: {pointers}")

    # The paper's headline query: ring[i] vs ring[i + 1] inside the loop.
    sweep = session.query_function("demo", "rbaa", "rotate")
    print(f"rbaa disambiguates {sweep['no_alias']}/{sweep['queries']} "
          f"pointer pairs in rotate")

    interval = session.range_of("demo", "rotate", "n")
    print(f"symbolic range of n: {interval['range']}")

    steps_cold = session.solver_steps("demo")
    edited = session.edit_source("demo", EDITED)
    session.query_function("demo", "rbaa", "rotate")
    steps_warm = session.solver_steps("demo") - steps_cold
    print(f"edit of {edited['changed']} re-ran {steps_warm} solver steps "
          f"(full build: {steps_cold}); refreshed in place: "
          f"{edited['impacts'][0]['refreshed']}")
    print(f"engine counters: {session.stats('demo')['engine']}")


def daemon_walkthrough() -> None:
    print("\n=== Line-delimited JSON daemon ===")
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    requests = [
        {"op": "ping"},
        {"op": "load", "name": "demo", "source": SOURCE},
        {"op": "query_function", "module": "demo", "analysis": "rbaa",
         "function": "rotate"},
        {"op": "edit", "name": "demo", "source": EDITED},
        {"op": "stats", "module": "demo"},
        {"op": "shutdown"},
    ]
    payload = "".join(json.dumps(request) + "\n" for request in requests)
    result = subprocess.run([sys.executable, "-m", "repro.service"],
                            input=payload, capture_output=True, text=True,
                            env=env, timeout=300)
    for request, line in zip(requests, result.stdout.strip().splitlines()):
        response = json.loads(line)
        summary = {key: response[key] for key in ("pong", "functions",
                                                  "no_alias", "changed",
                                                  "solver_steps", "shutdown")
                   if key in response}
        print(f"  {request['op']:>14} -> {summary}")


def main() -> None:
    in_process_walkthrough()
    daemon_walkthrough()


if __name__ == "__main__":
    main()
