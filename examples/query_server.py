#!/usr/bin/env python3
"""Walkthrough: the analysis service — resident modules, edits, queries.

Run with::

    python examples/query_server.py

The example drives the serving layer three ways — all speaking the one
versioned protocol defined in :mod:`repro.service.protocol`:

1. through the in-process :class:`repro.service.AnalysisSession` API —
   load a program, ask alias and range queries from warm analysis state,
   apply a single-function edit and watch the incremental path re-run only
   part of the work;
2. through the stdin/stdout daemon (``python -m repro.service``), using the
   protocol's client helpers (version stamp, request ids, structured
   ``error_code`` envelopes) exactly like a non-Python client would;
3. through the concurrent TCP server (``python -m repro.service.server``) —
   the sharded, batching front end — showing that socket answers are
   bit-identical to the in-process session's.
"""

import json
import os
import socket
import subprocess
import sys

import repro
from repro.service import AnalysisSession, check_response, make_request

SOURCE = r"""
void rotate(int* ring, int n) {
    int i;
    int first = ring[0];
    for (i = 0; i + 1 < n; i++) {
        ring[i] = ring[i + 1];
    }
    ring[n - 1] = first;
}
int main(int argc, char** argv) {
    int n = atoi(argv[1]);
    int* ring = (int*)malloc(n * 4);
    rotate(ring, n);
    return 0;
}
"""

# The same program with one function body edited: the incremental path
# re-analyses `rotate` and the interprocedural cone, nothing else.
EDITED = SOURCE.replace("ring[i] = ring[i + 1];",
                        "ring[i] = ring[i + 1] + 1;")


def in_process_walkthrough() -> None:
    print("=== In-process AnalysisSession ===")
    session = AnalysisSession()
    loaded = session.load_source("demo", SOURCE)
    print(f"loaded module with functions {loaded['functions']}")

    # Source-level names do not survive mem2reg; discover the SSA values.
    values = session.values("demo", "rotate")["values"]
    pointers = [v["name"] for v in values if v["pointer"]]
    print(f"pointer values of rotate: {pointers}")

    # The paper's headline query: ring[i] vs ring[i + 1] inside the loop.
    sweep = session.query_function("demo", "rbaa", "rotate")
    print(f"rbaa disambiguates {sweep['no_alias']}/{sweep['queries']} "
          f"pointer pairs in rotate")

    interval = session.range_of("demo", "rotate", "n")
    print(f"symbolic range of n: {interval['range']}")

    steps_cold = session.solver_steps("demo")
    edited = session.edit_source("demo", EDITED)
    session.query_function("demo", "rbaa", "rotate")
    steps_warm = session.solver_steps("demo") - steps_cold
    print(f"edit of {edited['changed']} re-ran {steps_warm} solver steps "
          f"(full build: {steps_cold}); refreshed in place: "
          f"{edited['impacts'][0]['refreshed']}")
    print(f"engine counters: {session.stats('demo')['engine']}")


def _subprocess_env() -> dict:
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def daemon_walkthrough() -> None:
    print("\n=== Line-delimited JSON daemon ===")
    # make_request stamps the protocol version; the ids come back verbatim
    # on each response, so pipelined traffic stays attributable.
    requests = [
        make_request("ping", id=1),
        make_request("load", id=2, name="demo", source=SOURCE),
        make_request("query_function", id=3, module="demo", analysis="rbaa",
                     function="rotate"),
        make_request("edit", id=4, name="demo", source=EDITED),
        make_request("stats", id=5, module="demo"),
        make_request("warp", id=6),  # structured error: unknown_op
        make_request("shutdown", id=7),
    ]
    payload = "".join(json.dumps(request) + "\n" for request in requests)
    result = subprocess.run([sys.executable, "-m", "repro.service"],
                            input=payload, capture_output=True, text=True,
                            env=_subprocess_env(), timeout=300)
    for request, line in zip(requests, result.stdout.strip().splitlines()):
        response = json.loads(line)
        summary = {key: response[key] for key in ("id", "pong", "functions",
                                                  "no_alias", "changed",
                                                  "solver_steps", "error_code",
                                                  "shutdown")
                   if key in response}
        print(f"  {request['op']:>14} -> {summary}")


def socket_walkthrough() -> None:
    print("\n=== Concurrent TCP server ===")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server",
         "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, text=True, env=_subprocess_env())
    banner = process.stdout.readline()
    port = int(banner.rsplit(":", 1)[1].split()[0])
    connection = socket.create_connection(("127.0.0.1", port), timeout=60)
    stream = connection.makefile("rw", encoding="utf-8", newline="\n")

    def call(payload):
        stream.write(json.dumps(payload) + "\n")
        stream.flush()
        return json.loads(stream.readline())

    loaded = check_response(call(make_request(
        "load", id="s1", name="demo", source=SOURCE)))
    sweep = check_response(call(make_request(
        "query_function", id="s2", module="demo", analysis="rbaa",
        function="rotate")))
    print(f"  socket: loaded {loaded['functions']}, rbaa disambiguates "
          f"{sweep['no_alias']}/{sweep['queries']} pairs in rotate")

    # The exact same request against an in-process session: bit-identical.
    session = AnalysisSession()
    session.load_source("demo", SOURCE)
    serial = session.query_function("demo", "rbaa", "rotate")
    socket_core = {key: sweep[key] for key in serial}
    print(f"  socket answer == in-process answer: {socket_core == serial}")

    call(make_request("shutdown", id="s3"))
    connection.close()
    process.wait(timeout=30)


def main() -> None:
    in_process_walkthrough()
    daemon_walkthrough()
    socket_walkthrough()


if __name__ == "__main__":
    main()
