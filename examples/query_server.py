#!/usr/bin/env python3
"""Walkthrough: the analysis service — resident modules, edits, queries.

Run with::

    python examples/query_server.py

The example drives the serving layer three ways — all speaking the one
versioned protocol defined in :mod:`repro.service.protocol`:

1. through the in-process :class:`repro.service.AnalysisSession` API —
   load a program, ask alias and range queries from warm analysis state,
   apply a single-function edit and watch the incremental path re-seed the
   interprocedural fixed points instead of rebuilding them;
2. through the stdin/stdout daemon (``python -m repro.service``) via the
   typed :class:`repro.service.DaemonClient` — every payload is built by
   the protocol's client helpers (version stamp, request ids, structured
   ``error_code`` envelopes) exactly like a non-Python client would;
3. through the concurrent TCP server (``python -m repro.service.server``)
   via :class:`repro.service.SocketClient` — the sharded, batching front
   end — showing that socket answers are bit-identical to the in-process
   session's.
"""

from repro.service import AnalysisSession, DaemonClient, SocketClient
from repro.service.protocol import ServiceError

SOURCE = r"""
void rotate(int* ring, int n) {
    int i;
    int first = ring[0];
    for (i = 0; i + 1 < n; i++) {
        ring[i] = ring[i + 1];
    }
    ring[n - 1] = first;
}
int main(int argc, char** argv) {
    int n = atoi(argv[1]);
    int* ring = (int*)malloc(n * 4);
    rotate(ring, n);
    return 0;
}
"""

# The same program with one function body edited: the incremental path
# re-analyses `rotate` and re-seeds the interprocedural cone, nothing else.
EDITED = SOURCE.replace("ring[i] = ring[i + 1];",
                        "ring[i] = ring[i + 1] + 1;")


def in_process_walkthrough() -> None:
    print("=== In-process AnalysisSession ===")
    session = AnalysisSession()
    loaded = session.load_source("demo", SOURCE)
    print(f"loaded module with functions {loaded['functions']}")

    # Source-level names do not survive mem2reg; discover the SSA values.
    values = session.values("demo", "rotate")["values"]
    pointers = [v["name"] for v in values if v["pointer"]]
    print(f"pointer values of rotate: {pointers}")

    # The paper's headline query: ring[i] vs ring[i + 1] inside the loop.
    sweep = session.query_function("demo", "rbaa", "rotate")
    print(f"rbaa disambiguates {sweep['no_alias']}/{sweep['queries']} "
          f"pointer pairs in rotate")

    interval = session.range_of("demo", "rotate", "n")
    print(f"symbolic range of n: {interval['range']}")

    steps_cold = session.solver_steps("demo")
    edited = session.edit_source("demo", EDITED)
    session.query_function("demo", "rbaa", "rotate")
    steps_warm = session.solver_steps("demo") - steps_cold
    impact = edited["impacts"][0]
    print(f"edit of {edited['changed']} re-ran {steps_warm} solver steps "
          f"(full build: {steps_cold}); refreshed in place: "
          f"{impact['refreshed']}")
    print(f"re-seeded nodes per fixed point: {impact['reseeded']} "
          f"(retained: {impact['retained']})")
    print(f"engine counters: {session.stats('demo')['engine']}")


def daemon_walkthrough() -> None:
    print("\n=== Line-delimited JSON daemon ===")
    # DaemonClient runs a real `python -m repro.service` subprocess; each
    # typed method stamps the protocol version and validates the envelope.
    with DaemonClient() as client:
        print(f"  ping -> {client.ping()}")
        loaded = client.load("demo", SOURCE)
        print(f"  load -> functions {loaded.functions}")
        sweep = client.query_function("demo", "rbaa", function="rotate")
        print(f"  query_function -> {sweep.no_alias}/{sweep.queries} "
              f"no-alias in rotate")
        edited = client.edit("demo", EDITED)
        print(f"  edit -> changed {edited['changed']}")
        stats = client.stats("demo")
        print(f"  stats -> solver_steps {stats['solver_steps']}, "
              f"by analysis {stats['solver_steps_by_analysis']}")
        try:
            client.request("warp")  # structured error: unknown_op
        except ServiceError as error:
            print(f"  warp -> error_code {error.code!r} ({error})")
        # close() sends the shutdown request and reaps the subprocess.


def socket_walkthrough() -> None:
    print("\n=== Concurrent TCP server ===")
    with SocketClient(workers=2) as client:
        loaded = client.load("demo", SOURCE)
        sweep = client.query_function("demo", "rbaa", function="rotate")
        print(f"  socket: loaded {loaded.functions}, rbaa disambiguates "
              f"{sweep.no_alias}/{sweep.queries} pairs in rotate")

        # The exact same request against an in-process session: identical.
        session = AnalysisSession()
        session.load_source("demo", SOURCE)
        serial = session.query_function("demo", "rbaa", "rotate")
        identical = (sweep.no_alias == serial["no_alias"]
                     and sweep.no_alias_indices == serial["no_alias_indices"]
                     and sweep.queries == serial["queries"])
        print(f"  socket answer == in-process answer: {identical}")


def main() -> None:
    in_process_walkthrough()
    daemon_walkthrough()
    socket_walkthrough()


if __name__ == "__main__":
    main()
