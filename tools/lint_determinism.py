#!/usr/bin/env python3
"""AST lint: hash-order hazards in the result-producing generator code.

Benchmark generation and evaluation must be bit-identical across
interpreter processes and ``PYTHONHASHSEED`` values — that is the
determinism gate CI diffs.  This lint rejects the three bug classes that
have historically broken it:

* **builtin ``hash()``** — the string hash is salted per process; seeds
  must flow from :func:`repro.benchgen.generator.stable_seed` instead;
* **iteration over set-typed expressions** — set iteration order varies
  with the hash seed; iterate a sorted copy (or an insertion-ordered
  dict) instead.  Detected with light local inference: set literals and
  comprehensions, ``set(...)``/``frozenset(...)`` calls, names assigned
  from them, and set-algebra ``BinOp``s over them or over dict views;
* **ambient ``random`` module state** — ``random.<fn>()`` draws from the
  process-global generator; thread an explicit ``random.Random`` seeded
  via ``stable_seed`` instead (``random.Random(...)`` itself is allowed).

Usage::

    python tools/lint_determinism.py [paths...]

Defaults to ``src/repro/benchgen`` and ``src/repro/evaluation``.  Exits
1 when any finding is reported; CI runs it in the lint job.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Set

DEFAULT_PATHS = ["src/repro/benchgen", "src/repro/evaluation"]

_SET_BUILTINS = {"set", "frozenset"}
_SET_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
_DICT_VIEW_ATTRS = {"keys", "items"}


class Finding:
    def __init__(self, path: Path, node: ast.AST, message: str):
        self.path = path
        self.line = getattr(node, "lineno", 0)
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


class _ScopeChecker(ast.NodeVisitor):
    """One function (or module) scope: set-name inference + hazard checks."""

    def __init__(self, path: Path, findings: List[Finding]):
        self.path = path
        self.findings = findings
        self.set_names: Set[str] = set()

    # -- light local type inference -------------------------------------------
    def _is_dict_view(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DICT_VIEW_ATTRS)

    def _is_set_typed(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _SET_BUILTINS:
            return True
        if isinstance(node, ast.Name) and node.id in self.set_names:
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            left_setlike = self._is_set_typed(node.left) \
                or self._is_dict_view(node.left)
            right_setlike = self._is_set_typed(node.right) \
                or self._is_dict_view(node.right)
            # Set algebra yields a set as soon as either side is set-like
            # (a dict view only participates when combined with one).
            if left_setlike and (self._is_set_typed(node.left)
                                 or right_setlike):
                return True
            if right_setlike and (self._is_set_typed(node.right)
                                  or left_setlike):
                return True
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_typed(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
        self.generic_visit(node)

    # -- hazards ---------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self.findings.append(Finding(
                self.path, node,
                "builtin hash() is PYTHONHASHSEED-salted; "
                "seed via stable_seed() instead"))
        if isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "random" \
                and node.func.attr != "Random":
            self.findings.append(Finding(
                self.path, node,
                f"random.{node.func.attr}() draws from ambient module "
                f"state; thread an explicit random.Random instead"))
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.AST) -> None:
        # Unwrap order-preserving wrappers; sorted() breaks the hazard.
        while isinstance(iterable, ast.Call) \
                and isinstance(iterable.func, ast.Name) \
                and iterable.func.id in {"enumerate", "list", "tuple",
                                         "reversed"} and iterable.args:
            iterable = iterable.args[0]
        if self._is_set_typed(iterable):
            self.findings.append(Finding(
                self.path, iterable,
                "iterating a set-typed expression; order varies with "
                "PYTHONHASHSEED — iterate sorted(...) instead"))

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(self, node: ast.AST) -> None:
        for comp in node.generators:
            self._check_iterable(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is fine (the result is unordered
        # anyway) only if it is then consumed safely — still check the
        # sources for consistency with other comprehensions.
        self._visit_comprehension_node(node)

    # -- scope boundaries ------------------------------------------------------
    def _visit_new_scope(self, node: ast.AST) -> None:
        checker = _ScopeChecker(self.path, self.findings)
        for child in ast.iter_child_nodes(node):
            checker.visit(child)

    visit_FunctionDef = _visit_new_scope
    visit_AsyncFunctionDef = _visit_new_scope


def lint_file(path: Path) -> List[Finding]:
    findings: List[Finding] = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    _ScopeChecker(path, findings).visit(tree)
    return findings


def lint_paths(paths: List[str]) -> List[Finding]:
    findings: List[Finding] = []
    for raw in paths:
        root = Path(raw)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_file(file))
    return findings


def main(argv: List[str]) -> int:
    paths = argv or DEFAULT_PATHS
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    print(f"{len(findings)} determinism finding(s) in {', '.join(paths)}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
